package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"iter"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Durable is the crash-safe observation backend: the in-memory sharded
// engine for every query, fronted on the write path by a per-shard
// write-ahead log and compacted periodically into time-bucketed JSONL
// snapshots. A Durable answers every Reader query exactly as the memory
// engine does (the memory engine IS its read path), and a process that
// dies — kill -9 included — loses at most the log tail that was not yet
// fsynced under the configured policy.
//
// On-disk layout of a data directory:
//
//	MANIFEST.json                      commit record: generation, buckets, prune totals
//	seg-<gen>-b<bucket>-<idx>.jsonl    active-bucket segments, JSONL {seq, obs} rows
//	seg-<gen>-b<bucket>-<idx>.jsonl.gz cold-bucket segments, same rows gzipped
//	wal-<gen>-<shard>.log              per-shard logs of post-snapshot batches
//
// Segments are keyed by time bucket (simulated observation time, fixed
// width): the storage lifecycle works bucket-at-a-time. Every bucket
// except the newest one holding data is cold and written compressed;
// retention prunes whole cold buckets — by age against the dataset's own
// clock, or oldest-first to fit a disk budget — and a pruned bucket is
// simply absent from the next committed manifest, so recovery and
// read-only opens replay only live buckets with no special cases.
//
// Opening a directory recovers it: the manifest's bucket segments load
// first, then the logs' complete records; both carry their original
// sequence numbers, so one global sort re-merges them into exact
// admission order. If replay folded anything in (or anything was torn,
// lost, or due for retention/compression), the recovered state is
// committed as a fresh generation; a clean restart reuses the committed
// generation and skips the O(dataset) rewrite. Torn log tails and
// truncated segments are tolerated and reported, never fatal.
type Durable struct {
	// mem is the read path. It is swapped wholesale when retention prunes
	// buckets (under the exclusive writeGate), so readers load it once per
	// operation and never see a half-pruned store.
	mem  atomic.Pointer[Store]
	dir  string
	opts DurableOptions

	// writeGate serializes structural transitions against writers:
	// AddAll holds it shared, Sync/Compact/Close hold it exclusively, so
	// an exclusive holder sees every reserved sequence number applied to
	// both the log and the memory engine.
	writeGate sync.RWMutex
	closed    bool
	gen       uint64
	// epoch is the directory's replication identity (see manifest.Epoch):
	// minted on first open, committed with every checkpoint, constant for
	// the directory's lifetime.
	epoch    uint64
	snapRows uint64
	// snapBuckets/snapCompressed/snapBytes describe the committed
	// snapshot's bucket layout; bucketBytes maps bucket start to its
	// committed on-disk size (how age-pruned buckets get byte-accounted).
	snapBuckets    int
	snapCompressed int
	snapBytes      int64
	bucketBytes    map[int64]int64
	// pruned accumulates retention's work, mirrored to the manifest.
	pruned PruneTotals
	// pruneHook, when set, runs under the exclusive gate after a
	// checkpoint prunes buckets — derived state (the analysis engine's
	// aggregates) rebuilds from the pruned store before writers resume.
	pruneHook func()
	wals      [numShards]walShardFile

	walBytes atomic.Int64
	synced   atomic.Uint64
	// rollBucket tracks the newest active bucket seen, so a batch that
	// advances the dataset into a new bucket can trigger a retention
	// checkpoint even when WAL growth alone would not.
	rollBucket atomic.Int64

	compacting atomic.Bool

	errMu    sync.Mutex
	firstErr error
	// failed mirrors firstErr != nil for lock-free reads: once any
	// record was dropped, the watermark freezes (see advanceSynced)
	// until a checkpoint makes the whole in-memory state durable again.
	failed atomic.Bool

	// lock is the data directory's single-writer flock.
	lock *os.File

	stopOnce sync.Once
	stopSync chan struct{}
	syncDone chan struct{}
}

// walShardFile is one shard's open log.
type walShardFile struct {
	mu sync.Mutex
	f  *os.File
	// poisoned marks a log whose tail may be torn by a failed append:
	// recovery stops at the first bad frame, so anything appended after
	// it would be unreadable — no further records (or durability claims)
	// until the next checkpoint swaps in a fresh file.
	poisoned bool
}

// errClosed marks operations on a closed durable store.
var errClosed = errors.New("store: durable store is closed")

// FsyncPolicy controls when the write-ahead log reaches stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs every batch before AddAll returns: a completed
	// write survives any crash. The zero value, because the safest mode
	// should be the default one.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background tick (DurableOptions.SyncInterval);
	// a crash loses at most one interval of writes.
	FsyncInterval
	// FsyncNever leaves flushing to the OS page cache; only Sync, Compact
	// and Close force stability. Fastest, weakest.
	FsyncNever
)

// String names the policy for logs and stats.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy maps the CLI spelling to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
}

// DurableOptions tunes the durable engine; zero values take the defaults
// noted on each field.
type DurableOptions struct {
	// Fsync is the log flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// SyncInterval is the FsyncInterval tick (default 200ms).
	SyncInterval time.Duration
	// SegmentBytes bounds one snapshot segment (default 8 MiB).
	SegmentBytes int64
	// CompactWALBytes triggers compaction once the generation's logs
	// exceed this many bytes (default 32 MiB; negative disables automatic
	// compaction — Compact can still be called).
	CompactWALBytes int64
	// BucketDuration is the time-bucket width segments, retention and
	// time-range pushdown partition by, in simulated observation time
	// (default 24h). Reopening a directory at a different width rebuckets
	// and rewrites the snapshot once.
	BucketDuration time.Duration
	// RetainAge, when positive, prunes buckets whose entire range is
	// older than the newest observation minus RetainAge — the dataset's
	// own clock, never the host's. The active bucket is never pruned.
	RetainAge time.Duration
	// RetainBytes, when positive, prunes oldest-first at each checkpoint
	// until the snapshot fits the budget. The active bucket always
	// survives, so the budget is respected only down to one bucket.
	RetainBytes int64
}

// withDefaults fills unset options.
func (o DurableOptions) withDefaults() DurableOptions {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 200 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.CompactWALBytes == 0 {
		o.CompactWALBytes = 32 << 20
	}
	if o.BucketDuration <= 0 {
		o.BucketDuration = DefaultBucketSeconds * time.Second
	}
	return o
}

// bucketSeconds is the configured width in whole seconds (minimum 1).
func (o DurableOptions) bucketSeconds() int64 {
	secs := int64(o.BucketDuration / time.Second)
	if secs <= 0 {
		secs = 1
	}
	return secs
}

// retentionOn reports whether any pruning rule is configured.
func (o DurableOptions) retentionOn() bool { return o.RetainAge > 0 || o.RetainBytes > 0 }

// RecoveryReport describes what opening a data directory found: how much
// of the dataset came from the snapshot, how much replayed from the log
// tail, and what a crash had torn away.
type RecoveryReport struct {
	// Generation is the snapshot generation recovered from.
	Generation uint64 `json:"generation"`
	// SnapshotRows is the observation count loaded from segments.
	SnapshotRows int `json:"snapshot_rows"`
	// SnapshotBuckets counts the live buckets loaded; CompressedBuckets
	// of them were cold (gzipped).
	SnapshotBuckets   int `json:"snapshot_buckets"`
	CompressedBuckets int `json:"compressed_buckets,omitempty"`
	// SegmentRowsLost counts snapshot rows unrecoverable from truncated
	// or missing segments.
	SegmentRowsLost int `json:"segment_rows_lost,omitempty"`
	// WALRecords and WALRows are the complete log records replayed and
	// the observations they carried.
	WALRecords int `json:"wal_records"`
	WALRows    int `json:"wal_rows"`
	// WALBytesDiscarded counts torn-tail bytes dropped during replay.
	WALBytesDiscarded int64 `json:"wal_bytes_discarded,omitempty"`
	// PrunedBuckets and PrunedRows report retention's cumulative work as
	// the manifest records it — rows absent here were dropped on purpose,
	// not lost.
	PrunedBuckets uint64 `json:"pruned_buckets,omitempty"`
	PrunedRows    uint64 `json:"pruned_rows,omitempty"`
	// LiveOwner reports that a writer held the directory's lock during a
	// read-only open: a torn-looking log tail is then most likely the
	// owner's in-flight append, not crash damage.
	LiveOwner bool `json:"live_owner,omitempty"`
}

// Rows is the total recovered observation count.
func (r RecoveryReport) Rows() int { return r.SnapshotRows + r.WALRows }

// String is the one-line boot log form.
func (r RecoveryReport) String() string {
	s := fmt.Sprintf("recovered %d observations (snapshot %d + wal %d, generation %d)",
		r.Rows(), r.SnapshotRows, r.WALRows, r.Generation)
	if r.SnapshotBuckets > 0 {
		s += fmt.Sprintf(", %d buckets (%d compressed)", r.SnapshotBuckets, r.CompressedBuckets)
	}
	if r.PrunedBuckets > 0 {
		s += fmt.Sprintf(", retention pruned %d buckets (%d rows) to date", r.PrunedBuckets, r.PrunedRows)
	}
	if r.SegmentRowsLost > 0 {
		s += fmt.Sprintf(", %d snapshot rows lost to truncation", r.SegmentRowsLost)
	}
	if r.WALBytesDiscarded > 0 {
		s += fmt.Sprintf(", %d torn wal bytes discarded", r.WALBytesDiscarded)
		if r.LiveOwner {
			s += " (live writer present: likely its in-flight append, not damage)"
		}
	}
	return s
}

// OpenDurable opens (creating if needed) a data directory as a writable
// durable backend: recover, then commit the recovered state as a fresh
// generation so the engine starts on a clean snapshot and empty logs.
func OpenDurable(dir string, opts DurableOptions) (*Durable, RecoveryReport, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryReport{}, fmt.Errorf("store: create data dir: %w", err)
	}
	// Single writer per directory: a second writable open (a supervisor
	// double-start, a crawl pointed at a live sheriffd's dir) must fail
	// at startup, not checkpoint over the owner's live generation.
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	mem, man, rep, err := recoverDir(dir)
	if err != nil {
		lock.Close()
		return nil, rep, err
	}
	width := opts.bucketSeconds()
	if mem.bucketSecs != width {
		mem.rebucket(width)
	}
	d := &Durable{dir: dir, opts: opts, gen: man.Generation, lock: lock}
	d.mem.Store(mem)
	d.pruned = man.Pruned
	d.epoch = man.Epoch
	if d.epoch == 0 {
		d.epoch = NewReplicationEpoch()
		if man.Generation == 0 && len(man.Buckets) == 0 && rep.Rows() == 0 && rep.WALBytesDiscarded == 0 {
			// Fresh directory: commit the minted identity alone, at
			// generation 0 — there is no data to rewrite, and the
			// generation counter must not advance on an empty open.
			man.Epoch = d.epoch
			man.BucketSeconds = width
			if err := commitManifest(dir, man); err != nil {
				lock.Close()
				return nil, rep, err
			}
		}
	}
	// When recovery folded nothing in — no log records, no torn bytes,
	// no lost rows — and the committed snapshot needs no lifecycle work
	// (same bucket width, cold buckets compressed, no retention due),
	// that snapshot already IS the recovered state, and rewriting it
	// would put an O(dataset) segment dump on every clean restart's boot
	// path. Reuse the generation instead; anything else checkpoints. A
	// manifest without an epoch forces one checkpoint so the freshly
	// minted identity is committed, not re-minted per restart.
	clean := rep.WALRecords == 0 && rep.WALBytesDiscarded == 0 && rep.SegmentRowsLost == 0 &&
		(man.BucketSeconds == 0 || man.BucketSeconds == width) &&
		man.Epoch != 0 &&
		!d.lifecycleDue(man, mem)
	if clean {
		err = d.reuseGenerationLocked(man)
	} else {
		err = d.checkpointLocked()
	}
	if err != nil {
		lock.Close()
		return nil, rep, err
	}
	if b, ok := d.mem.Load().activeBucket(); ok {
		d.rollBucket.Store(b)
	} else {
		d.rollBucket.Store(noObservations)
	}
	if opts.Fsync == FsyncInterval {
		d.stopSync = make(chan struct{})
		d.syncDone = make(chan struct{})
		go d.syncLoop()
	}
	return d, rep, nil
}

// lifecycleDue reports whether the committed snapshot needs a checkpoint
// for lifecycle reasons alone: a cold bucket left uncompressed, a bucket
// past the retention age, or a snapshot over the disk budget.
func (d *Durable) lifecycleDue(man *manifest, mem *Store) bool {
	active, hasData := mem.activeBucket()
	if !hasData {
		return false
	}
	for _, b := range man.Buckets {
		if b.Start != active && !b.Compressed && b.Rows > 0 {
			return true
		}
	}
	if d.opts.RetainAge > 0 {
		cutoff := mem.maxUnix.Load() - int64(d.opts.RetainAge/time.Second)
		for _, b := range man.Buckets {
			if b.Start != active && b.Start+man.BucketSeconds <= cutoff {
				return true
			}
		}
	}
	if d.opts.RetainBytes > 0 && len(man.Buckets) > 1 {
		var total int64
		for _, b := range man.Buckets {
			total += b.Bytes
		}
		if total > d.opts.RetainBytes {
			return true
		}
	}
	return false
}

// OpenReadOnly recovers a data directory into a plain in-memory store
// without writing anything — the analysis-side open: a dataset directory
// can be inspected while (or after) a live process owns it. A live
// owner's compaction can sweep the very generation being loaded
// mid-read; that race is detected (the manifest's generation moved) and
// the load retries on the new generation, so apparent damage is only
// reported when the generation was stable.
func OpenReadOnly(dir string) (*Store, RecoveryReport, error) {
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, RecoveryReport{}, fmt.Errorf("store: data dir %s: not a directory", dir)
	}
	for attempt := 0; ; attempt++ {
		mem, _, rep, err := recoverDir(dir)
		rep.LiveOwner = dataDirBusy(dir)
		if cur, merr := readManifest(dir); merr == nil && cur.Generation != rep.Generation {
			if attempt < 5 {
				continue // raced a compaction; load the new generation
			}
			// Still racing after every retry: what recoverDir loaded is
			// some mix of swept generations, and returning it as data
			// would report phantom damage (or silent loss) on a healthy
			// directory.
			return nil, rep, fmt.Errorf("store: data dir %s kept compacting during read-only open; retry when the owner is quieter", dir)
		}
		return mem, rep, err
	}
}

// recoverDir rebuilds the dataset a directory holds: the manifest's live
// buckets plus the log tail's complete records, all carrying their
// original sequence numbers, merged by one global sort back into exact
// admission order. The rebuilt store keeps every row's original sequence
// number and resumes the counter at the recovered maximum — replication
// resumes by sequence, so a restart must never renumber rows out from
// under a follower's cursor. Pruned buckets are simply absent from the
// manifest: nothing here ever sees them.
func recoverDir(dir string) (*Store, *manifest, RecoveryReport, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, nil, RecoveryReport{}, err
	}
	rep := RecoveryReport{
		Generation:    man.Generation,
		PrunedBuckets: man.Pruned.Buckets,
		PrunedRows:    man.Pruned.Rows,
	}
	mem := newBucketed(man.BucketSeconds)
	var pending []seqObs
	for _, b := range man.Buckets {
		rep.SnapshotBuckets++
		if b.Compressed {
			rep.CompressedBuckets++
		}
		for _, info := range b.Segments {
			lost, err := loadSegment(dir, info, &pending)
			if err != nil {
				return nil, nil, rep, err
			}
			rep.SegmentRowsLost += lost
			rep.SnapshotRows += info.Rows - lost
		}
	}

	// Replay: gather every complete record across the per-shard logs.
	// Only rows logged after the snapshot qualify: the manifest records
	// the sequence counter at its commit (MaxSeq), and every later batch
	// reserved above it. Retention can leave holes below MaxSeq, which is
	// why the cut is the counter, not the row count.
	for shard := 0; shard < numShards; shard++ {
		f, err := os.Open(filepath.Join(dir, walFile(man.Generation, shard)))
		if errors.Is(err, fs.ErrNotExist) {
			continue // no log for this shard: nothing was written there
		}
		if err != nil {
			// A log that exists but cannot be opened is NOT an empty log:
			// skipping it would recover a silently truncated dataset and
			// a writable open would then commit (and sweep) the loss.
			return nil, nil, rep, fmt.Errorf("store: open wal: %w", err)
		}
		recs, discarded, err := readWAL(f)
		f.Close()
		if err != nil {
			return nil, nil, rep, err
		}
		rep.WALBytesDiscarded += discarded
		for _, rec := range recs {
			rep.WALRecords++
			for i := range rec.Obs {
				if rec.Seqs[i] > man.MaxSeq {
					pending = append(pending, seqObs{seq: rec.Seqs[i], obs: rec.Obs[i]})
					rep.WALRows++
				}
			}
		}
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].seq < pending[b].seq })
	// Replay under the original sequence numbers (recovery runs
	// single-threaded, so addDirect is safe). Batch boundaries — the cut
	// points replication frames on — are reconstructed at sequence gaps
	// (a retention hole or a lost record always breaks contiguity) and at
	// readBatch rows otherwise, the same chunking bulk loads use.
	run := 0
	for i := range pending {
		mem.addDirect(pending[i].obs, pending[i].seq)
		run++
		if run < readBatch && i+1 < len(pending) && pending[i+1].seq == pending[i].seq+1 {
			continue
		}
		mem.batchEnds = append(mem.batchEnds, pending[i].seq)
		run = 0
	}
	maxSeq := man.MaxSeq
	if n := len(pending); n > 0 && pending[n-1].seq > maxSeq {
		maxSeq = pending[n-1].seq
	}
	mem.seq.Store(maxSeq)
	return mem, man, rep, nil
}

// checkpointLocked commits the memory engine's current state as a new
// generation — bucket segments, manifest, fresh empty logs — applying
// the storage lifecycle as it goes: every live bucket rewrites under the
// new generation (no file ever carries over, which keeps the sweep
// trivially safe), cold buckets compress, age-expired buckets are
// skipped outright, and the disk budget evicts oldest-first. The caller
// holds writeGate exclusively, or is still single-threaded in
// OpenDurable.
//
// The manifest rename is the commit point, and the in-memory generation
// state must never desync from it: every fallible step is staged BEFORE
// the commit (a failure aborts with the old generation fully intact and
// only orphan files on disk), and everything after the commit is either
// infallible (handle swaps, counter resets, the in-memory prune) or
// best-effort cleanup whose failure is recorded, not allowed to leave
// d.gen behind the committed manifest — a desync would make later
// batches log into files recovery never reads, and a re-used generation
// number would truncate committed segments.
func (d *Durable) checkpointLocked() error {
	mem := d.mem.Load()
	newGen := d.gen + 1

	// Stage the new generation's logs and segments. commitManifest's
	// directory fsync below makes these creates durable together with
	// the rename.
	var fresh [numShards]*os.File
	abort := func(err error) error {
		for _, f := range fresh {
			if f != nil {
				f.Close()
			}
		}
		return err
	}
	for shard := range fresh {
		f, err := os.OpenFile(filepath.Join(d.dir, walFile(newGen, shard)),
			os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return abort(fmt.Errorf("store: create wal: %w", err))
		}
		fresh[shard] = f
	}

	// Bucket plan: live buckets oldest-first, age-expired ones pruned
	// before a byte is written (their last committed size is what the
	// byte accounting can know).
	counts := mem.bucketRows()
	active, hasData := mem.activeBucket()
	starts := make([]int64, 0, len(counts))
	for b := range counts {
		starts = append(starts, b)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	pruned := d.pruned
	victims := make(map[int64]struct{})
	if d.opts.RetainAge > 0 && hasData {
		cutoff := mem.maxUnix.Load() - int64(d.opts.RetainAge/time.Second)
		for _, b := range starts {
			if b != active && b+mem.bucketSecs <= cutoff {
				victims[b] = struct{}{}
				pruned.Buckets++
				pruned.Rows += uint64(counts[b])
				pruned.Bytes += uint64(d.bucketBytes[b])
			}
		}
	}

	var infos []bucketInfo
	var rows uint64
	for _, b := range starts {
		if _, dead := victims[b]; dead {
			continue
		}
		info, err := writeBucket(d.dir, newGen, mem, b, b != active, d.opts.SegmentBytes)
		if err != nil {
			return abort(err)
		}
		infos = append(infos, info)
		rows += uint64(info.Rows)
	}

	// Disk budget: evict oldest-first until the snapshot fits; the
	// active bucket survives regardless. Evicted buckets were already
	// written — their files are uncommitted orphans the sweep removes.
	if d.opts.RetainBytes > 0 {
		var total int64
		for _, info := range infos {
			total += info.Bytes
		}
		for len(infos) > 1 && total > d.opts.RetainBytes && infos[0].Start != active {
			ev := infos[0]
			infos = infos[1:]
			total -= ev.Bytes
			rows -= uint64(ev.Rows)
			victims[ev.Start] = struct{}{}
			pruned.Buckets++
			pruned.Rows += uint64(ev.Rows)
			pruned.Bytes += uint64(ev.Bytes)
		}
	}

	man := &manifest{
		Version:       manifestVersion,
		Generation:    newGen,
		Rows:          rows,
		MaxSeq:        mem.seq.Load(),
		BucketSeconds: mem.bucketSecs,
		Buckets:       infos,
		Pruned:        pruned,
		Epoch:         d.epoch,
	}
	if err := commitManifest(d.dir, man); err != nil {
		return abort(err)
	}

	// Committed. Swap in the staged logs and bring memory in line with
	// the manifest before anything that can still fail. Fresh files also
	// clear any append-failure poisoning (writers are excluded by the
	// gate, so the flag flips race-free).
	var old [numShards]*os.File
	for shard := range d.wals {
		old[shard] = d.wals[shard].f
		d.wals[shard].f = fresh[shard]
		d.wals[shard].poisoned = false
	}
	d.gen = newGen
	d.snapRows = rows
	d.snapBuckets = len(infos)
	d.snapCompressed = 0
	d.snapBytes = 0
	d.bucketBytes = make(map[int64]int64, len(infos))
	for _, info := range infos {
		if info.Compressed {
			d.snapCompressed++
		}
		d.snapBytes += info.Bytes
		d.bucketBytes[info.Start] = info.Bytes
	}
	d.pruned = pruned
	d.walBytes.Store(0)

	if len(victims) > 0 {
		// Prune memory to match the commit: a fresh store holding every
		// surviving row under its original sequence number, swapped in
		// whole. Readers mid-iteration keep the old store — it is never
		// mutated — and every later read sees only live buckets.
		ns, _ := mem.rebuildWithout(victims)
		d.mem.Store(ns)
		mem = ns
	}
	// The committed snapshot holds the entire in-memory state — rows a
	// failed append had dropped from the log included — so the watermark
	// is truthful again and may resume advancing (the sticky Err stays
	// for reporting).
	d.synced.Store(mem.seq.Load())
	d.failed.Store(false)

	if len(victims) > 0 && d.pruneHook != nil {
		// Writers are quiesced by the gate; derived state rebuilds from
		// the pruned store before appends resume.
		d.pruneHook()
	}

	// Cleanup is best-effort: stale files of other generations — and this
	// generation's budget-evicted buckets — are inert (recovery trusts
	// only the manifest) and the next checkpoint sweeps whatever this one
	// could not.
	for _, f := range old {
		if f != nil {
			f.Close()
		}
	}
	if err := d.sweepExcept(newGen, man); err != nil {
		d.fail(err)
	}
	return nil
}

// reuseGenerationLocked adopts the committed generation as-is: recovery
// loaded exactly the snapshot (every log was empty or absent) and no
// lifecycle work is due, so the only work is opening the generation's
// logs for appending and sweeping other generations' orphans. Only
// called from OpenDurable, still single-threaded.
func (d *Durable) reuseGenerationLocked(man *manifest) error {
	for shard := range d.wals {
		f, err := os.OpenFile(filepath.Join(d.dir, walFile(man.Generation, shard)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			for si := 0; si < shard; si++ {
				d.wals[si].f.Close()
			}
			return fmt.Errorf("store: create wal: %w", err)
		}
		d.wals[shard].f = f
	}
	// Make the directory entries durable: on a first-ever open this is
	// the only point that fsyncs the directory (no manifest commit runs),
	// and fsync=always is hollow if power loss can drop the log files
	// themselves.
	if err := syncDir(d.dir); err != nil {
		for si := range d.wals {
			d.wals[si].f.Close()
		}
		return err
	}
	d.gen = man.Generation
	d.snapRows = man.Rows
	d.snapBuckets = len(man.Buckets)
	d.snapCompressed = 0
	d.snapBytes = 0
	d.bucketBytes = make(map[int64]int64, len(man.Buckets))
	for _, b := range man.Buckets {
		if b.Compressed {
			d.snapCompressed++
		}
		d.snapBytes += b.Bytes
		d.bucketBytes[b.Start] = b.Bytes
	}
	d.pruned = man.Pruned
	d.synced.Store(d.mem.Load().seq.Load())
	if err := d.sweepExcept(man.Generation, man); err != nil {
		d.fail(err)
	}
	return nil
}

// sweepExcept removes segment files the manifest does not name (other
// generations' files, aborted-pass orphans, budget-evicted buckets), log
// files of any generation other than keep, and a stale manifest temp
// file.
func (d *Durable) sweepExcept(keep uint64, man *manifest) error {
	live := make(map[string]struct{})
	for _, b := range man.Buckets {
		for _, seg := range b.Segments {
			live[seg.Name] = struct{}{}
		}
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: sweep data dir: %w", err)
	}
	walKeep := fmt.Sprintf("wal-%08d-", keep)
	for _, e := range entries {
		name := e.Name()
		stale := name == manifestName+".tmp"
		if strings.HasPrefix(name, "seg-") {
			_, ok := live[name]
			stale = !ok
		} else if strings.HasPrefix(name, "wal-") {
			stale = !strings.HasPrefix(name, walKeep)
		}
		if stale {
			if err := os.Remove(filepath.Join(d.dir, name)); err != nil {
				return fmt.Errorf("store: sweep %s: %w", name, err)
			}
		}
	}
	return nil
}

// Add appends one observation durably.
func (d *Durable) Add(o Observation) { d.AddAll([]Observation{o}) }

// SetObserver installs the write-path observer on the underlying memory
// engine — every durable AddAll applies through it, so one hook covers
// both engines. Recovery runs before a caller can attach, so an engine
// that needs the recovered rows must rebuild from the store's contents
// first (aggregate.New does). The hook survives retention's store swap.
func (d *Durable) SetObserver(fn Observer) { d.mem.Load().SetObserver(fn) }

// SetPruneHook installs fn to run — under the exclusive write gate, with
// writers quiesced — after a checkpoint prunes buckets, so derived state
// can rebuild from the pruned store before appends resume. Install
// before concurrent writers start; nil removes it.
func (d *Durable) SetPruneHook(fn func()) {
	d.writeGate.Lock()
	d.pruneHook = fn
	d.writeGate.Unlock()
}

// AddAll logs the batch shard by shard, then applies it to the memory
// engine — identical sequence numbers on both sides, so recovery replays
// the log into exactly the order live readers saw. Under FsyncAlways the
// involved logs are fsynced before AddAll returns. Write errors (disk
// full, closed store) do not panic mid-campaign: the batch stays visible
// in memory, the failure is sticky and surfaces on Sync and Close.
func (d *Durable) AddAll(os_ []Observation) {
	if len(os_) == 0 {
		return
	}
	d.writeGate.RLock()
	defer d.writeGate.RUnlock()
	if d.closed {
		d.fail(fmt.Errorf("store: AddAll: %w", errClosed))
		return
	}
	mem := d.mem.Load()
	base := mem.reserve(len(os_))

	var touched [numShards]bool
	groups, single := groupByShard(os_)
	logged := true
	if single >= 0 {
		seqs := make([]uint64, len(os_))
		for i := range seqs {
			seqs[i] = base + uint64(i) + 1
		}
		logged = d.logRecord(single, seqs, os_)
		touched[single] = true
	} else {
		for si := range groups {
			if len(groups[si]) == 0 {
				continue
			}
			seqs := make([]uint64, len(groups[si]))
			obs := make([]Observation, len(groups[si]))
			for j, i := range groups[si] {
				seqs[j] = base + uint64(i) + 1
				obs[j] = os_[i]
			}
			logged = d.logRecord(si, seqs, obs) && logged
			touched[si] = true
		}
	}

	if d.opts.Fsync == FsyncAlways {
		for si := range touched {
			if !touched[si] {
				continue
			}
			if err := d.wals[si].f.Sync(); err != nil {
				d.fail(fmt.Errorf("store: fsync wal: %w", err))
				logged = false
			}
		}
		// The watermark only moves for batches that provably reached
		// disk: a failed append or fsync must not let /api/stats claim
		// durability the next crash would disprove.
		if logged {
			d.advanceSynced(base + uint64(len(os_)))
		}
	}

	mem.addAllAt(os_, base)

	if t := d.opts.CompactWALBytes; t > 0 && d.walBytes.Load() >= t {
		// The trigger upgrades to the exclusive gate on its own
		// goroutine, outside this AddAll's shared hold — but the pass
		// itself pauses every writer for the O(dataset) segment rewrite
		// (see Compact). Size CompactWALBytes accordingly.
		go d.tryCompact()
	} else if d.opts.retentionOn() {
		// Retention is evaluated at checkpoints, so a batch that rolls
		// the dataset into a new active bucket triggers one even when
		// WAL growth alone would not — the previous bucket just went
		// cold and may now be compressible or prunable.
		if b, ok := mem.activeBucket(); ok {
			prev := d.rollBucket.Load()
			if b > prev && d.rollBucket.CompareAndSwap(prev, b) && prev != noObservations {
				go d.tryCompact()
			}
		}
	}
}

// tryCompact runs at most one compaction at a time; extra triggers while
// one is running are dropped (the running pass absorbs their bytes).
func (d *Durable) tryCompact() {
	if !d.compacting.CompareAndSwap(false, true) {
		return
	}
	defer d.compacting.Store(false)
	// A trigger that lost the race against Close is not a failure; the
	// un-compacted log replays on the next open.
	if err := d.Compact(); err != nil && !errors.Is(err, errClosed) {
		d.fail(err)
	}
}

// logRecord frames and appends one record to a shard's log, reporting
// whether the append reached the file. A failed append may have written
// a partial frame, after which recovery would discard everything later
// in that log as the torn tail — so the first failure poisons the shard
// and every subsequent record is refused (kept in memory only, never
// counted durable) until a checkpoint swaps in a fresh file.
func (d *Durable) logRecord(shard int, seqs []uint64, obs []Observation) bool {
	buf, err := appendWALRecord(nil, seqs, obs)
	if err != nil {
		d.fail(err)
		return false
	}
	ws := &d.wals[shard]
	ws.mu.Lock()
	if ws.poisoned {
		ws.mu.Unlock()
		return false
	}
	_, werr := ws.f.Write(buf)
	if werr != nil {
		ws.poisoned = true
	}
	ws.mu.Unlock()
	if werr != nil {
		d.fail(fmt.Errorf("store: append wal: %w", werr))
		return false
	}
	d.walBytes.Add(int64(len(buf)))
	return true
}

// advanceSynced lifts the durable watermark to seq, never lowering it.
// Once any record has been dropped (a failed append keeps its rows in
// memory only), a sequence watermark cannot truthfully advance — a
// concurrent healthy batch with higher sequences would sweep the dropped
// rows under its claim — so the watermark freezes until a checkpoint
// re-establishes durability for the whole in-memory state.
func (d *Durable) advanceSynced(seq uint64) {
	if d.failed.Load() {
		return
	}
	for {
		cur := d.synced.Load()
		if cur >= seq || d.synced.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Sync flushes every shard log to stable storage and returns the first
// write error the store has seen (nil when healthy). After Sync returns,
// every AddAll that completed before the call survives a crash.
func (d *Durable) Sync() error {
	d.writeGate.Lock()
	defer d.writeGate.Unlock()
	if !d.closed {
		d.syncAllLocked()
	}
	return d.Err()
}

// syncAllLocked fsyncs every log under the exclusive gate (so every
// reserved sequence has been written) and lifts the watermark.
func (d *Durable) syncAllLocked() {
	for si := range d.wals {
		if err := d.wals[si].f.Sync(); err != nil {
			d.fail(fmt.Errorf("store: fsync wal: %w", err))
			return
		}
	}
	d.advanceSynced(d.mem.Load().seq.Load())
}

// Compact commits the current state as a fresh snapshot generation —
// applying retention and cold-bucket compression — and empties the logs.
// Writers pause for the duration.
func (d *Durable) Compact() error {
	d.writeGate.Lock()
	defer d.writeGate.Unlock()
	if d.closed {
		return fmt.Errorf("store: Compact: %w", errClosed)
	}
	return d.checkpointLocked()
}

// Close flushes, fsyncs and closes the logs. The directory is left in the
// same state a crash after a Sync would leave — the next open recovers it
// identically — so Close is a flush point, not a format transition.
func (d *Durable) Close() error {
	if d.stopSync != nil {
		d.stopOnce.Do(func() {
			close(d.stopSync)
			<-d.syncDone
		})
	}
	d.writeGate.Lock()
	defer d.writeGate.Unlock()
	if d.closed {
		return d.Err()
	}
	d.syncAllLocked()
	d.closed = true
	for si := range d.wals {
		if err := d.wals[si].f.Close(); err != nil {
			d.fail(fmt.Errorf("store: close wal: %w", err))
		}
	}
	if d.lock != nil {
		d.lock.Close() // releases the directory's single-writer flock
	}
	return d.Err()
}

// syncLoop is the FsyncInterval background flusher.
func (d *Durable) syncLoop() {
	defer close(d.syncDone)
	t := time.NewTicker(d.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.Sync()
		case <-d.stopSync:
			return
		}
	}
}

// fail records the store's first error; later ones are dropped (the first
// is almost always the cause, the rest fallout).
func (d *Durable) fail(err error) {
	d.failed.Store(true)
	d.errMu.Lock()
	if d.firstErr == nil {
		d.firstErr = err
	}
	d.errMu.Unlock()
}

// Err returns the sticky first write error, nil while healthy.
func (d *Durable) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.firstErr
}

// DurableStats is the monitoring view of the durable engine.
type DurableStats struct {
	// Dir is the data directory.
	Dir string `json:"dir"`
	// Fsync names the flush policy.
	Fsync string `json:"fsync"`
	// Generation is the committed snapshot generation.
	Generation uint64 `json:"generation"`
	// SnapshotRows is the committed snapshot's observation count.
	SnapshotRows uint64 `json:"snapshot_rows"`
	// SnapshotBuckets is the committed snapshot's live bucket count;
	// CompressedBuckets of them are cold (gzipped); SnapshotBytes is
	// their total on-disk size.
	SnapshotBuckets   int   `json:"snapshot_buckets"`
	CompressedBuckets int   `json:"compressed_buckets"`
	SnapshotBytes     int64 `json:"snapshot_bytes"`
	// BucketSeconds is the time-bucket width.
	BucketSeconds int64 `json:"bucket_seconds"`
	// RetainAgeSeconds and RetainBytes echo the retention knobs (0 = off).
	RetainAgeSeconds int64 `json:"retain_age_seconds,omitempty"`
	RetainBytes      int64 `json:"retain_bytes,omitempty"`
	// PrunedBuckets, PrunedRows and PrunedBytes accumulate what retention
	// has dropped over the directory's lifetime.
	PrunedBuckets uint64 `json:"pruned_buckets"`
	PrunedRows    uint64 `json:"pruned_rows"`
	PrunedBytes   uint64 `json:"pruned_bytes"`
	// WALBytes is the current generation's total log size.
	WALBytes int64 `json:"wal_bytes"`
	// SyncedSeq is the durable watermark. It is exact whenever no AddAll
	// is in flight (after Sync, after quiesce, and — since always-mode
	// batches fsync before returning — at any point a caller observes
	// its own write completed); while concurrent always-mode batches are
	// mid-fsync it may briefly run ahead of a slower sibling's batch.
	SyncedSeq uint64 `json:"synced_seq"`
}

// Stats snapshots the durability counters.
func (d *Durable) Stats() DurableStats {
	d.writeGate.RLock()
	gen, rows := d.gen, d.snapRows
	buckets, compressed, bytes := d.snapBuckets, d.snapCompressed, d.snapBytes
	pruned := d.pruned
	d.writeGate.RUnlock()
	return DurableStats{
		Dir:               d.dir,
		Fsync:             d.opts.Fsync.String(),
		Generation:        gen,
		SnapshotRows:      rows,
		SnapshotBuckets:   buckets,
		CompressedBuckets: compressed,
		SnapshotBytes:     bytes,
		BucketSeconds:     d.mem.Load().BucketSeconds(),
		RetainAgeSeconds:  int64(d.opts.RetainAge / time.Second),
		RetainBytes:       d.opts.RetainBytes,
		PrunedBuckets:     pruned.Buckets,
		PrunedRows:        pruned.Rows,
		PrunedBytes:       pruned.Bytes,
		WALBytes:          d.walBytes.Load(),
		SyncedSeq:         d.synced.Load(),
	}
}

// The Reader surface delegates to the memory engine — the durable store's
// read path IS the sharded in-memory engine, so queries cost exactly what
// they cost before durability existed. The pointer is loaded once per
// call: a concurrent retention swap never splits one operation across
// two stores.

func (d *Durable) Len() int                           { return d.mem.Load().Len() }
func (d *Durable) LenOK() int                         { return d.mem.Load().LenOK() }
func (d *Durable) LenSource(source string) (int, int) { return d.mem.Load().LenSource(source) }
func (d *Durable) LenVP(vp string) int                { return d.mem.Load().LenVP(vp) }
func (d *Durable) Scan(q Query) iter.Seq[Observation] { return d.mem.Load().Scan(q) }
func (d *Durable) ScanRange(q Query, after, upto uint64) iter.Seq2[uint64, Observation] {
	return d.mem.Load().ScanRange(q, after, upto)
}
func (d *Durable) Watermark() uint64            { return d.mem.Load().Watermark() }
func (d *Durable) Filter(q Query) []Observation { return d.mem.Load().Filter(q) }
func (d *Durable) All() []Observation           { return d.mem.Load().All() }
func (d *Durable) Domains() []string            { return d.mem.Load().Domains() }
func (d *Durable) Products(domain string) []Key { return d.mem.Load().Products(domain) }
func (d *Durable) GroupByProduct(source string) map[Key][]Observation {
	return d.mem.Load().GroupByProduct(source)
}
func (d *Durable) Groups(source string) iter.Seq2[Key, []Observation] {
	return d.mem.Load().Groups(source)
}
func (d *Durable) DomainGroups(domain, source string) iter.Seq2[Key, []Observation] {
	return d.mem.Load().DomainGroups(domain, source)
}
func (d *Durable) WriteJSONL(w io.Writer) error { return d.mem.Load().WriteJSONL(w) }

// ScanStats snapshots the time-range pushdown counters (see Store.ScanStats).
func (d *Durable) ScanStats() ScanStats { return d.mem.Load().ScanStats() }

// TenantCounts snapshots per-tenant contribution counts (see
// Store.TenantCounts).
func (d *Durable) TenantCounts() map[string]TenantCount { return d.mem.Load().TenantCounts() }

// BucketSeconds reports the engine's time-bucket width.
func (d *Durable) BucketSeconds() int64 { return d.mem.Load().BucketSeconds() }
