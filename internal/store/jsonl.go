package store

import (
	"bufio"
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteJSONL streams the store as JSON Lines in insertion order: the
// per-shard order lists are merged by sequence number with a k-way heap,
// emitting bytes identical to what the historical single-slice engine
// produced for the same sequence of adds. Like that engine, writing
// holds the store's read locks for the duration of the dump, so the
// snapshot is globally consistent.
func (s *Store) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	err := s.dumpOrdered(func(_ uint64, o *Observation) error { return enc.Encode(o) })
	if err != nil {
		return err
	}
	return bw.Flush()
}

// dumpOrdered holds every shard's read lock and feeds each observation
// (with its sequence number) to emit in global sequence order — the
// shared core of WriteJSONL, the retention rebuild and the durable
// engine's snapshot writer. The callback must not call back into the
// store (every lock is held).
func (s *Store) dumpOrdered(emit func(uint64, *Observation) error) error {
	for si := range s.shards {
		s.shards[si].mu.RLock()
		defer s.shards[si].mu.RUnlock()
	}
	var lists [][]gref
	for si := range s.shards {
		if order := orderedBySeq(s.shards[si].order); len(order) > 0 {
			lists = append(lists, order)
		}
	}
	return mergeEmit(lists, emit)
}

// mergeEmit k-way merges seq-ordered gref lists and feeds each row to
// emit in global sequence order. Callers hold the shard locks covering
// every list.
func mergeEmit(lists [][]gref, emit func(uint64, *Observation) error) error {
	h := make(shardHeap, 0, len(lists))
	for _, order := range lists {
		h = append(h, shardCursor{order: order, seq: order[0].seq()})
	}
	heap.Init(&h)

	for n := 0; h.Len() > 0; n++ {
		cur := h[0]
		if err := emit(cur.seq, cur.order[cur.pos].obs()); err != nil {
			return fmt.Errorf("store: encode observation %d: %w", n, err)
		}
		if next := cur.pos + 1; next < len(cur.order) {
			h[0] = shardCursor{order: cur.order, pos: next, seq: cur.order[next].seq()}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}

// orderedBySeq returns the shard's order list in ascending sequence
// order, which the k-way merge requires. Append order already is
// sequence order for serial writers; only concurrent AddAll batches that
// reserve sequence blocks before taking the shard lock can interleave
// out of order, and then a sorted copy restores the contract that every
// read path — queries and serialization alike — yields sequence order.
func orderedBySeq(order []gref) []gref {
	for i := 1; i < len(order); i++ {
		if order[i-1].seq() > order[i].seq() {
			sorted := append([]gref(nil), order...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a].seq() < sorted[b].seq() })
			return sorted
		}
	}
	return order
}

// shardCursor is one shard's read position during the k-way merge.
type shardCursor struct {
	order []gref
	pos   int
	seq   uint64
}

// shardHeap is a min-heap of cursors ordered by next sequence number.
type shardHeap []shardCursor

func (h shardHeap) Len() int           { return len(h) }
func (h shardHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h shardHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *shardHeap) Push(x any)        { *h = append(*h, x.(shardCursor)) }
func (h *shardHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// readBatch is the AddAll chunk size for JSONL loads: large enough to
// amortize sequence reservation and shard locking, small enough to keep
// peak decode memory flat.
const readBatch = 1024

// ReadJSONL loads a store previously written with WriteJSONL, batching
// decoded observations into the shards. Round-tripping a dataset through
// ReadJSONL and WriteJSONL reproduces it byte for byte.
func ReadJSONL(r io.Reader) (*Store, error) {
	s := New()
	dec := json.NewDecoder(bufio.NewReader(r))
	batch := make([]Observation, 0, readBatch)
	for i := 0; ; i++ {
		var o Observation
		if err := dec.Decode(&o); err != nil {
			if err == io.EOF {
				s.AddAll(batch)
				return s, nil
			}
			return nil, fmt.Errorf("store: decode line %d: %w", i, err)
		}
		batch = append(batch, o)
		if len(batch) == readBatch {
			s.AddAll(batch)
			batch = batch[:0]
		}
	}
}
