// Package store is the measurement database: every price the system
// extracts — crowdsourced check, systematic crawl round, or controlled
// experiment — lands here as an Observation. The analysis pipeline only
// ever reads this store, so a dataset can be persisted as JSON Lines,
// reloaded, and re-analyzed without re-running a campaign, mirroring how
// the paper separates collection from analysis.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sheriff/internal/money"
)

// Source labels the campaign that produced an observation.
const (
	// SourceCrowd marks $heriff crowd checks (Sec. 3).
	SourceCrowd = "crowd"
	// SourceCrawl marks systematic crawl rounds (Sec. 4).
	SourceCrawl = "crawl"
	// SourceLogin marks the Kindle login experiment (Fig. 10).
	SourceLogin = "login"
	// SourcePersona marks the affluent/budget persona experiment.
	SourcePersona = "persona"
)

// Observation is one extracted price (or extraction failure).
type Observation struct {
	// Domain is the retailer.
	Domain string `json:"domain"`
	// SKU identifies the product within the domain.
	SKU string `json:"sku"`
	// URL is the exact product URI fetched.
	URL string `json:"url"`
	// VP is the vantage point ID ("us-nyc") or a user tag for crowd
	// originators.
	VP string `json:"vp"`
	// VPLabel is the display label ("USA - New York").
	VPLabel string `json:"vp_label"`
	// Country is the vantage point's country code.
	Country string `json:"country"`
	// City is the vantage point's city.
	City string `json:"city"`
	// PriceUnits is the displayed price in minor units.
	PriceUnits int64 `json:"price_units"`
	// Currency is the displayed price's ISO code.
	Currency string `json:"currency"`
	// Time is the simulated observation time.
	Time time.Time `json:"time"`
	// Round is the crawl round (0-based); -1 outside crawls.
	Round int `json:"round"`
	// Source is one of the Source* constants.
	Source string `json:"source"`
	// Account is the logged-in account for login experiments.
	Account string `json:"account,omitempty"`
	// Segment is the persona segment for persona experiments.
	Segment string `json:"segment,omitempty"`
	// OK reports whether extraction succeeded; when false Err explains.
	OK bool `json:"ok"`
	// Err is the extraction failure, empty on success.
	Err string `json:"err,omitempty"`
}

// Amount reconstructs the money value of the observation.
func (o Observation) Amount() (money.Amount, bool) {
	c, ok := money.ByCode(o.Currency)
	if !ok {
		return money.Amount{}, false
	}
	return money.FromMinor(o.PriceUnits, c), true
}

// Key identifies the product a group of observations belongs to.
type Key struct {
	Domain string
	SKU    string
}

// Store is an append-only observation log with query helpers.
// It is safe for concurrent use.
type Store struct {
	mu  sync.RWMutex
	obs []Observation
}

// New returns an empty store.
func New() *Store { return &Store{} }

// Add appends one observation.
func (s *Store) Add(o Observation) {
	s.mu.Lock()
	s.obs = append(s.obs, o)
	s.mu.Unlock()
}

// AddAll appends a batch.
func (s *Store) AddAll(os []Observation) {
	s.mu.Lock()
	s.obs = append(s.obs, os...)
	s.mu.Unlock()
}

// Len returns the number of observations (successes and failures).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.obs)
}

// LenOK returns the number of successfully extracted prices — the paper's
// "188K extracted prices" counts these.
func (s *Store) LenOK() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, o := range s.obs {
		if o.OK {
			n++
		}
	}
	return n
}

// Query filters observations. Zero-valued fields match everything.
type Query struct {
	// Domain restricts to one retailer.
	Domain string
	// SKU restricts to one product.
	SKU string
	// Source restricts to one campaign type.
	Source string
	// VP restricts to one vantage point ID.
	VP string
	// Round restricts to one crawl round when >= 0 (use -1 to match all).
	Round int
	// OnlyOK drops failed extractions.
	OnlyOK bool
}

// Filter returns matching observations in insertion order.
func (s *Store) Filter(q Query) []Observation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Observation
	for _, o := range s.obs {
		if q.Domain != "" && o.Domain != q.Domain {
			continue
		}
		if q.SKU != "" && o.SKU != q.SKU {
			continue
		}
		if q.Source != "" && o.Source != q.Source {
			continue
		}
		if q.VP != "" && o.VP != q.VP {
			continue
		}
		if q.Round >= 0 && o.Round != q.Round {
			continue
		}
		if q.OnlyOK && !o.OK {
			continue
		}
		out = append(out, o)
	}
	return out
}

// All returns every observation. The paper's analysis scripts iterate the
// whole dataset; so do ours.
func (s *Store) All() []Observation {
	return s.Filter(Query{Round: -1})
}

// Domains returns the distinct domains observed, sorted.
func (s *Store) Domains() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]bool{}
	for _, o := range s.obs {
		set[o.Domain] = true
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Products returns the distinct product keys of a domain, sorted by SKU.
func (s *Store) Products(domain string) []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[Key]bool{}
	for _, o := range s.obs {
		if o.Domain == domain {
			set[Key{Domain: o.Domain, SKU: o.SKU}] = true
		}
	}
	out := make([]Key, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SKU < out[j].SKU })
	return out
}

// GroupByProduct partitions observations of one source by product key.
func (s *Store) GroupByProduct(source string) map[Key][]Observation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[Key][]Observation{}
	for _, o := range s.obs {
		if source != "" && o.Source != source {
			continue
		}
		k := Key{Domain: o.Domain, SKU: o.SKU}
		out[k] = append(out[k], o)
	}
	return out
}

// WriteJSONL streams the store as JSON Lines.
func (s *Store) WriteJSONL(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range s.obs {
		if err := enc.Encode(&s.obs[i]); err != nil {
			return fmt.Errorf("store: encode observation %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a store previously written with WriteJSONL.
func ReadJSONL(r io.Reader) (*Store, error) {
	s := New()
	dec := json.NewDecoder(bufio.NewReader(r))
	for i := 0; ; i++ {
		var o Observation
		if err := dec.Decode(&o); err != nil {
			if err == io.EOF {
				return s, nil
			}
			return nil, fmt.Errorf("store: decode line %d: %w", i, err)
		}
		s.obs = append(s.obs, o)
	}
}
