// Package store is the measurement database: every price the system
// extracts — crowdsourced check, systematic crawl round, or controlled
// experiment — lands here as an Observation. The analysis pipeline only
// ever reads this store, so a dataset can be persisted as JSON Lines,
// reloaded, and re-analyzed without re-running a campaign, mirroring how
// the paper separates collection from analysis.
//
// The engine is sharded and indexed for campaign scale: observations are
// partitioned by hash(Domain) into independently-locked shards, so the
// backend's 14-way check fan-outs and concurrent crawler rounds never
// contend on one mutex, and every shard maintains incremental indexes at
// Add time (per-product posting lists, per-source posting lists, per-VP
// counters, domain/SKU sets). Queries that used to be O(dataset) linear
// scans — Products, Domains, LenOK, GroupByProduct, domain-scoped
// Filters — are O(result) index walks. Readers iterate through Scan and
// Groups, which snapshot only a query's matching rows (never rescanning
// or copying the rest of the dataset) and hold no lock while the
// consumer's loop body runs; the slice-returning APIs remain as thin
// adapters over them.
//
// Ordering: every observation receives a global sequence number when it
// is admitted, and all query and serialization paths yield observations
// in sequence order. For any serial sequence of Add/AddAll calls this is
// exactly insertion order, so WriteJSONL emits byte-identical output to
// the historical single-slice engine.
package store

import (
	"sync"
	"sync/atomic"
	"time"

	"sheriff/internal/money"
)

// Source labels the campaign that produced an observation.
const (
	// SourceCrowd marks $heriff crowd checks (Sec. 3).
	SourceCrowd = "crowd"
	// SourceCrawl marks systematic crawl rounds (Sec. 4).
	SourceCrawl = "crawl"
	// SourceLogin marks the Kindle login experiment (Fig. 10).
	SourceLogin = "login"
	// SourcePersona marks the affluent/budget persona experiment.
	SourcePersona = "persona"
)

// Observation is one extracted price (or extraction failure).
type Observation struct {
	// Domain is the retailer.
	Domain string `json:"domain"`
	// SKU identifies the product within the domain.
	SKU string `json:"sku"`
	// URL is the exact product URI fetched.
	URL string `json:"url"`
	// VP is the vantage point ID ("us-nyc") or a user tag for crowd
	// originators.
	VP string `json:"vp"`
	// VPLabel is the display label ("USA - New York").
	VPLabel string `json:"vp_label"`
	// Country is the vantage point's country code.
	Country string `json:"country"`
	// City is the vantage point's city.
	City string `json:"city"`
	// PriceUnits is the displayed price in minor units.
	PriceUnits int64 `json:"price_units"`
	// Currency is the displayed price's ISO code.
	Currency string `json:"currency"`
	// Time is the simulated observation time.
	Time time.Time `json:"time"`
	// Round is the crawl round (0-based); -1 outside crawls.
	Round int `json:"round"`
	// Source is one of the Source* constants.
	Source string `json:"source"`
	// Account is the logged-in account for login experiments.
	Account string `json:"account,omitempty"`
	// Segment is the persona segment for persona experiments.
	Segment string `json:"segment,omitempty"`
	// UserCountry is the originating crowd user's country code — where the
	// highlight was made — empty outside crowd checks.
	UserCountry string `json:"user_country,omitempty"`
	// Tenant is the contributing tenant's ID for authenticated crowd
	// checks; empty for anonymous and non-crowd observations.
	Tenant string `json:"tenant,omitempty"`
	// OK reports whether extraction succeeded; when false Err explains.
	OK bool `json:"ok"`
	// Err is the extraction failure, empty on success.
	Err string `json:"err,omitempty"`
}

// Amount reconstructs the money value of the observation.
func (o Observation) Amount() (money.Amount, bool) {
	c, ok := money.ByCode(o.Currency)
	if !ok {
		return money.Amount{}, false
	}
	return money.FromMinor(o.PriceUnits, c), true
}

// Key identifies the product a group of observations belongs to.
type Key struct {
	Domain string
	SKU    string
}

// Store is an append-only observation database, sharded by domain hash.
// It is safe for concurrent use; writers to different domains proceed in
// parallel and readers never block writers of other shards.
type Store struct {
	seq    atomic.Uint64
	shards [numShards]shard

	// bucketSecs is the time-bucket width the per-shard bucket indexes
	// are keyed by — the partition unit of durable segments, retention
	// and time-range pushdown. Fixed at construction.
	bucketSecs int64
	// maxUnix tracks the newest observation time seen (unix seconds);
	// noObservations while empty. Retention ages buckets against this
	// simulated clock, never the host's.
	maxUnix atomic.Int64

	// segScanned and segSkipped count time-range pushdown decisions
	// (see ScanStats).
	segScanned atomic.Uint64
	segSkipped atomic.Uint64

	// wmMu guards inflight: the bases of batches whose sequence numbers
	// are reserved but not yet fully applied to the shards. The applied
	// watermark (Watermark) is the largest sequence below every in-flight
	// reservation — everything at or below it is visible, so cursor
	// pagination can promise a stable prefix even while concurrent
	// batches apply out of reservation order.
	wmMu     sync.Mutex
	inflight map[uint64]struct{}
	// batchEnds records, strictly increasing, the last sequence number of
	// every admitted batch (guarded by wmMu, appended at reservation
	// time). Replication ships the WAL batch-at-a-time, and derived state
	// that folds per batch (the incremental engine's strategy events) is
	// batching-dependent — so a follower must cut its frames at exactly
	// these boundaries to reproduce the primary byte-for-byte.
	batchEnds []uint64

	// observer, when set, receives every applied batch (see SetObserver).
	observer Observer
}

// noObservations is maxUnix's empty-store sentinel: below any real
// observation time, including zero time.Time values.
const noObservations = int64(-1 << 62)

// Observer receives each applied batch on the writer's goroutine, after
// the batch's rows are visible to readers and its reservation released —
// the write-path fold hook the incremental analysis engine hangs off.
// The slice is the caller's; treat it as read-only and do not retain it.
type Observer func(batch []Observation)

// New returns an empty store with the default (daily) bucket width.
func New() *Store {
	return newBucketed(DefaultBucketSeconds)
}

// newBucketed returns an empty store partitioned at the given bucket
// width (seconds).
func newBucketed(bucketSecs int64) *Store {
	if bucketSecs <= 0 {
		bucketSecs = DefaultBucketSeconds
	}
	s := &Store{bucketSecs: bucketSecs, inflight: make(map[uint64]struct{})}
	s.maxUnix.Store(noObservations)
	for i := range s.shards {
		s.shards[i].init()
	}
	return s
}

// SetObserver installs the write-path observer (nil removes it). Install
// before concurrent writers start — typically right after construction or
// recovery — and fold the store's existing contents first: batches applied
// while no observer is set are not replayed.
func (s *Store) SetObserver(fn Observer) { s.observer = fn }

// Add appends one observation. It routes through AddAll so the write
// path — observer included — is one code path.
func (s *Store) Add(o Observation) {
	s.AddAll([]Observation{o})
}

// AddAll appends a batch, preserving batch order in the store's global
// sequence (a backend check's 14 per-VP observations or a crawler
// product-round land with one reservation and, when they share a domain,
// one lock acquisition).
func (s *Store) AddAll(os []Observation) {
	if len(os) == 0 {
		return
	}
	s.addAllAt(os, s.reserve(len(os)))
}

// reserve claims n consecutive sequence numbers and returns the base: the
// i-th observation of the batch gets sequence base+i+1. The durable
// engine reserves before logging so WAL records carry the same sequence
// numbers the memory engine assigns. The reservation is tracked as
// in-flight (holding the watermark below it) until the matching
// applied(base) — addAllAt releases it.
func (s *Store) reserve(n int) uint64 {
	s.wmMu.Lock()
	base := s.seq.Add(uint64(n)) - uint64(n)
	s.inflight[base] = struct{}{}
	s.batchEnds = append(s.batchEnds, base+uint64(n))
	s.wmMu.Unlock()
	return base
}

// applied releases a reservation once its batch is fully visible.
func (s *Store) applied(base uint64) {
	s.wmMu.Lock()
	delete(s.inflight, base)
	s.wmMu.Unlock()
}

// Watermark returns the largest sequence number S such that every
// observation with sequence <= S has been fully applied: reservations
// hand out sequence numbers before batches take shard locks, so a batch
// with higher sequences can become visible before an earlier one — below
// the watermark that can no longer happen, which is what makes
// seq-based pagination cursors stable under concurrent appends.
func (s *Store) Watermark() uint64 {
	s.wmMu.Lock()
	defer s.wmMu.Unlock()
	w := s.seq.Load()
	for base := range s.inflight {
		if base < w {
			w = base
		}
	}
	return w
}

// addAllAt appends a batch under an already-reserved sequence base,
// releases the reservation, then hands the batch to the observer (if
// any) — outside every shard lock, so an observer may freely read the
// store.
func (s *Store) addAllAt(os []Observation, base uint64) {
	newest := noObservations
	for i := range os {
		if u := os[i].Time.Unix(); u > newest {
			newest = u
		}
	}
	groups, single := groupByShard(os)
	if single >= 0 {
		// Fast path: single-shard batches (the common shape — one product
		// fanned out across vantage points) take one shard lock.
		sh := &s.shards[single]
		sh.mu.Lock()
		for i := range os {
			sh.add(os[i], base+uint64(i)+1, bucketOf(os[i].Time, s.bucketSecs))
		}
		sh.mu.Unlock()
	} else {
		for si := range groups {
			if len(groups[si]) == 0 {
				continue
			}
			sh := &s.shards[si]
			sh.mu.Lock()
			for _, i := range groups[si] {
				sh.add(os[i], base+uint64(i)+1, bucketOf(os[i].Time, s.bucketSecs))
			}
			sh.mu.Unlock()
		}
	}
	maxUnixUpdate(&s.maxUnix, newest)
	s.applied(base)
	if obs := s.observer; obs != nil {
		obs(os)
	}
}

// groupByShard splits a non-empty batch by destination shard: either
// every observation maps to one shard (single >= 0, no allocation — the
// fan-out fast path) or groups holds each shard's batch indices in batch
// order, so per-shard sequences stay ascending. The memory engine's
// apply path and the durable engine's logging path both partition
// through here — the WAL record layout must agree with shard placement.
func groupByShard(os []Observation) (groups [numShards][]int32, single int) {
	first := shardIdx(os[0].Domain)
	for i := 1; i < len(os); i++ {
		if shardIdx(os[i].Domain) != first {
			for j := range os {
				si := shardIdx(os[j].Domain)
				groups[si] = append(groups[si], int32(j))
			}
			return groups, -1
		}
	}
	return groups, int(first)
}

// Len returns the number of observations (successes and failures).
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.order)
		sh.mu.RUnlock()
	}
	return n
}

// LenOK returns the number of successfully extracted prices — the paper's
// "188K extracted prices" counts these. Maintained incrementally: O(shards).
func (s *Store) LenOK() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.ok
		sh.mu.RUnlock()
	}
	return n
}

// LenSource returns the number of observations of one campaign source,
// and how many of them carry a successfully extracted price.
func (s *Store) LenSource(source string) (total, ok int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += len(sh.bySource[source])
		ok += sh.okBySource[source]
		sh.mu.RUnlock()
	}
	return total, ok
}

// LenVP returns the number of observations recorded from one vantage point.
func (s *Store) LenVP(vp string) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.byVP[vp]
		sh.mu.RUnlock()
	}
	return n
}

// TenantCount splits one tenant's contributed observations into total
// and successfully extracted.
type TenantCount struct {
	Total int
	OK    int
}

// TenantCounts returns per-tenant contribution counts for every tenant
// that has submitted observations. Anonymous observations (empty Tenant)
// are not counted, so the map is empty — not nil-keyed — when tenancy is
// unused. Maintained incrementally: O(shards × tenants).
func (s *Store) TenantCounts() map[string]TenantCount {
	out := make(map[string]TenantCount)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for tn, n := range sh.byTenant {
			tc := out[tn]
			tc.Total += n
			tc.OK += sh.okByTenant[tn]
			out[tn] = tc
		}
		sh.mu.RUnlock()
	}
	return out
}
