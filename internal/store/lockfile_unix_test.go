//go:build unix

package store

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOpenDurableSingleWriter pins the double-open guard: two live
// writable owners of one directory would checkpoint over and sweep each
// other's generations, so the second open must fail at the door — and a
// closed (or killed: flock dies with the process) owner must not block
// the next one.
func TestOpenDurableSingleWriter(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	if _, _, err := OpenDurable(dir, DurableOptions{}); err == nil {
		t.Fatal("second writable open of a live data dir succeeded")
	}
	// Read-only inspection of a live dir stays allowed, and the report
	// flags the live owner (so torn-looking tails read as in-flight
	// appends, not damage).
	if _, rep, err := OpenReadOnly(dir); err != nil {
		t.Fatalf("read-only open blocked by the writer lock: %v", err)
	} else if !rep.LiveOwner {
		t.Fatal("live owner not flagged in read-only recovery report")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, rep, err := OpenReadOnly(dir); err != nil {
		t.Fatal(err)
	} else if rep.LiveOwner {
		t.Fatal("closed owner still flagged live")
	}
	d2, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRejectsUnreadableWAL pins that a log which exists but
// cannot be opened is an error, not an empty log: silently skipping it
// would recover a truncated dataset with a clean report, and a writable
// open would then commit the loss for good.
func TestRecoverRejectsUnreadableWAL(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	d.AddAll(seedObservations(2, 200))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	logs := walPaths(t, dir)
	if len(logs) == 0 {
		t.Fatal("no logs to damage")
	}
	// Replace one log with a symlink loop: os.Open fails with ELOOP, a
	// non-ENOENT error recovery must surface.
	if err := os.Remove(logs[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(filepath.Base(logs[0]), logs[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenReadOnly(dir); err == nil {
		t.Fatal("unreadable wal silently treated as empty")
	}
	if _, _, err := OpenDurable(dir, DurableOptions{}); err == nil {
		t.Fatal("writable open committed past an unreadable wal")
	}
}
