package store

// Time buckets partition the dataset for the storage lifecycle: durable
// segments are keyed by (time bucket, generation), retention prunes
// whole buckets, and time-bounded queries push their range predicate
// down to bucket selection instead of scanning every row. A bucket is
// the half-open interval [start, start+width) in simulated observation
// time — the paper's campaigns run on the world clock, so retention and
// slicing follow that clock, never the wall clock of the host.

import (
	"sync/atomic"
	"time"
)

// DefaultBucketSeconds is the default bucket width: one simulated day.
// The crawler advances one round per day and the crowd harness steps its
// clock a day per round barrier, so daily buckets line up with campaign
// structure.
const DefaultBucketSeconds = 24 * 60 * 60

// bucketOf maps an observation time to its bucket start (unix seconds,
// floor division so pre-epoch times bucket correctly).
func bucketOf(t time.Time, secs int64) int64 {
	u := t.Unix()
	b := u / secs
	if u%secs < 0 {
		b--
	}
	return b * secs
}

// ScanStats counts time-range pushdown decisions: how many bucket
// partitions a time-bounded scan visited versus skipped outright. The
// unit is one (shard, bucket) partition per scan — a skipped partition
// is data a cold segment would have held that the query never touched,
// which is what makes pushdown assertable from /api/v1/stats. Unbounded
// scans bump neither counter.
type ScanStats struct {
	// SegmentsScanned counts partitions a time-bounded scan walked.
	SegmentsScanned uint64 `json:"segments_scanned"`
	// SegmentsSkipped counts partitions whose bucket fell entirely
	// outside the query's time range.
	SegmentsSkipped uint64 `json:"segments_skipped"`
}

// ScanStats snapshots the pushdown counters.
func (s *Store) ScanStats() ScanStats {
	return ScanStats{
		SegmentsScanned: s.segScanned.Load(),
		SegmentsSkipped: s.segSkipped.Load(),
	}
}

// BucketSeconds reports the store's bucket width.
func (s *Store) BucketSeconds() int64 { return s.bucketSecs }

// maxUnixUpdate lifts the newest-observation clock to u.
func maxUnixUpdate(a *atomic.Int64, u int64) {
	for {
		cur := a.Load()
		if cur >= u || a.CompareAndSwap(cur, u) {
			return
		}
	}
}

// activeBucket is the newest bucket holding data — the one retention
// never prunes and compression never touches. ok is false on an empty
// store.
func (s *Store) activeBucket() (int64, bool) {
	u := s.maxUnix.Load()
	if u == noObservations {
		return 0, false
	}
	b := u / s.bucketSecs
	if u%s.bucketSecs < 0 {
		b--
	}
	return b * s.bucketSecs, true
}

// bucketRows counts rows per bucket across every shard.
func (s *Store) bucketRows() map[int64]int {
	counts := make(map[int64]int)
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for b, refs := range sh.byBucket {
			counts[b] += len(refs)
		}
		sh.mu.RUnlock()
	}
	return counts
}

// dumpBucket feeds one bucket's observations to emit in global sequence
// order (k-way merge of the shards' bucket posting lists), with each
// row's sequence number — the segment writer's core. Every shard read
// lock is held for the duration; emit must not call back into the store.
func (s *Store) dumpBucket(start int64, emit func(uint64, *Observation) error) error {
	for si := range s.shards {
		s.shards[si].mu.RLock()
		defer s.shards[si].mu.RUnlock()
	}
	var lists [][]gref
	for si := range s.shards {
		if refs := orderedBySeq(s.shards[si].byBucket[start]); len(refs) > 0 {
			lists = append(lists, refs)
		}
	}
	return mergeEmit(lists, emit)
}

// rebucket rebuilds every shard's bucket index at a new width. Only for
// single-threaded use (open paths), before concurrent access starts.
func (s *Store) rebucket(secs int64) {
	s.bucketSecs = secs
	for si := range s.shards {
		sh := &s.shards[si]
		sh.byBucket = make(map[int64][]gref)
		for _, r := range sh.order {
			b := bucketOf(r.obs().Time, secs)
			sh.byBucket[b] = append(sh.byBucket[b], r)
		}
	}
}

// rebuildWithout builds a fresh store holding every row except those in
// the dropped buckets, preserving each surviving row's original sequence
// number — live cursors keep meaning the same rows, holes in the
// sequence space are invisible to every read path. The sequence counter,
// observer hook and scan counters carry over. The caller must exclude
// writers (the durable engine holds its write gate); concurrent readers
// of the old store are safe — it is never mutated.
func (s *Store) rebuildWithout(dropped map[int64]struct{}) (*Store, uint64) {
	ns := newBucketed(s.bucketSecs)
	var prunedRows uint64
	err := s.dumpOrdered(func(seq uint64, o *Observation) error {
		if _, drop := dropped[bucketOf(o.Time, s.bucketSecs)]; drop {
			prunedRows++
			return nil
		}
		ns.addDirect(*o, seq)
		return nil
	})
	_ = err // the emit above never fails
	ns.seq.Store(s.seq.Load())
	s.wmMu.Lock()
	ns.batchEnds = append(ns.batchEnds, s.batchEnds...)
	s.wmMu.Unlock()
	ns.observer = s.observer
	ns.segScanned.Store(s.segScanned.Load())
	ns.segSkipped.Store(s.segSkipped.Load())
	return ns, prunedRows
}

// addDirect appends one row under an explicit, caller-owned sequence
// number, bypassing reservation. Single-threaded rebuild use only.
func (s *Store) addDirect(o Observation, seq uint64) {
	sh := &s.shards[shardIdx(o.Domain)]
	sh.add(o, seq, bucketOf(o.Time, s.bucketSecs))
	maxUnixUpdate(&s.maxUnix, o.Time.Unix())
}
