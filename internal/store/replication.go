package store

// Replication ships the write-ahead log over HTTP: a primary streams its
// admitted batches — the same CRC-framed records the durable log uses,
// cut at the same batch boundaries — and a follower applies them into
// its own memory engine under the primary's sequence numbers. Keeping
// the original batching matters beyond efficiency: derived state that
// folds per batch (the incremental analysis engine's strategy events)
// is batching-dependent, so identical frames are what make a caught-up
// follower byte-identical to its primary.
//
// The wire unit is a WALFrame: the walRecord framing from wal.go (uint32
// length + CRC-32C + JSON payload) with the sender's applied watermark
// riding along for lag accounting. An empty frame carrying only the
// watermark is a heartbeat. Resume is by sequence number — a follower
// reconnects with ?after=<last applied seq> and the primary replays
// every batch above it — so a follower may die and restart at any point
// without coordination.

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"iter"
	"sort"
)

// HTTP surface of the replication stream.
const (
	// ReplicationContentType marks a WAL frame stream body.
	ReplicationContentType = "application/x-sheriff-wal"
	// ReplicationEpochHeader carries the primary's replication epoch; a
	// follower pins the first value it sees and refuses a primary whose
	// epoch changed (a replaced or reset data directory).
	ReplicationEpochHeader = "X-Sheriff-Replication-Epoch"
	// ReplicationWatermarkHeader carries the primary's applied watermark
	// at response time, before any frame arrives.
	ReplicationWatermarkHeader = "X-Sheriff-Watermark"
)

// ErrTornFrame marks a replication frame that ends (or breaks) before
// completing — a cut connection mid-frame, not corruption to die over;
// the follower reconnects and resumes from its last applied sequence.
var ErrTornFrame = errors.New("store: torn replication frame")

// WALFrame is one replication stream unit: an admitted batch with its
// original sequence numbers, plus the sender's applied watermark. A
// frame with no rows is a heartbeat (watermark only).
type WALFrame struct {
	Seqs      []uint64
	Obs       []Observation
	Watermark uint64
}

// EncodeWALFrame appends the frame onto buf in the WAL record framing
// and returns the extended slice.
func EncodeWALFrame(buf []byte, f WALFrame) ([]byte, error) {
	return appendFramed(buf, walRecord{Seqs: f.Seqs, Obs: f.Obs, W: f.Watermark})
}

// WALFrameReader decodes a stream of WAL frames from r.
type WALFrameReader struct {
	r   io.Reader
	hdr [walHeaderSize]byte
	buf []byte
}

// NewWALFrameReader returns a reader decoding frames from r.
func NewWALFrameReader(r io.Reader) *WALFrameReader {
	return &WALFrameReader{r: r}
}

// Next reads one frame. It returns io.EOF on a clean end of stream
// (between frames) and ErrTornFrame on any defect — a short or broken
// frame cannot be resynchronized past, so the caller must drop the
// connection and resume by sequence number.
func (fr *WALFrameReader) Next() (WALFrame, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return WALFrame{}, io.EOF
		}
		return WALFrame{}, fmt.Errorf("%w: short header: %v", ErrTornFrame, err)
	}
	n := binary.LittleEndian.Uint32(fr.hdr[0:4])
	if n > maxWALRecord {
		return WALFrame{}, fmt.Errorf("%w: frame of %d bytes exceeds the %d-byte limit", ErrTornFrame, n, maxWALRecord)
	}
	need := walHeaderSize + int(n)
	if cap(fr.buf) < need {
		fr.buf = make([]byte, need)
	}
	frame := fr.buf[:need]
	copy(frame, fr.hdr[:])
	if _, err := io.ReadFull(fr.r, frame[walHeaderSize:]); err != nil {
		return WALFrame{}, fmt.Errorf("%w: short payload: %v", ErrTornFrame, err)
	}
	rec, _, err := parseWALRecord(frame)
	if err != nil {
		return WALFrame{}, fmt.Errorf("%w: bad frame", ErrTornFrame)
	}
	return WALFrame{Seqs: rec.Seqs, Obs: rec.Obs, Watermark: rec.W}, nil
}

// NewReplicationEpoch mints a random nonzero epoch.
func NewReplicationEpoch() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("store: replication epoch: %v", err))
		}
		if e := binary.LittleEndian.Uint64(b[:]); e != 0 {
			return e
		}
	}
}

// ApplyAt appends a replicated batch under the primary's sequence
// numbers: seqs must be strictly increasing and entirely above this
// store's current sequence counter (gaps are fine — retention on the
// primary leaves holes). It is the follower-side counterpart of AddAll:
// rows become visible under the same watermark discipline, and the
// observer (the incremental analysis fold) fires after the batch is
// visible. A store has exactly one applier — ApplyAt must not run
// concurrently with itself or with AddAll.
func (s *Store) ApplyAt(seqs []uint64, obs []Observation) error {
	if len(seqs) == 0 {
		return nil
	}
	if len(seqs) != len(obs) {
		return fmt.Errorf("store: ApplyAt: %d seqs for %d observations", len(seqs), len(obs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			return fmt.Errorf("store: ApplyAt: sequence numbers not strictly increasing (%d after %d)", seqs[i], seqs[i-1])
		}
	}
	cur := s.seq.Load()
	if seqs[0] <= cur {
		return fmt.Errorf("store: ApplyAt: sequence %d not above the applied counter %d", seqs[0], cur)
	}
	last := seqs[len(seqs)-1]
	// Reserve the batch's whole range: the counter jumps to the batch
	// end, and the in-flight marker at cur holds the watermark below the
	// batch until every row is visible.
	s.wmMu.Lock()
	s.inflight[cur] = struct{}{}
	s.seq.Store(last)
	s.batchEnds = append(s.batchEnds, last)
	s.wmMu.Unlock()

	newest := noObservations
	for i := range obs {
		if u := obs[i].Time.Unix(); u > newest {
			newest = u
		}
	}
	groups, single := groupByShard(obs)
	if single >= 0 {
		sh := &s.shards[single]
		sh.mu.Lock()
		for i := range obs {
			sh.add(obs[i], seqs[i], bucketOf(obs[i].Time, s.bucketSecs))
		}
		sh.mu.Unlock()
	} else {
		for si := range groups {
			if len(groups[si]) == 0 {
				continue
			}
			sh := &s.shards[si]
			sh.mu.Lock()
			for _, i := range groups[si] {
				sh.add(obs[i], seqs[i], bucketOf(obs[i].Time, s.bucketSecs))
			}
			sh.mu.Unlock()
		}
	}
	maxUnixUpdate(&s.maxUnix, newest)
	s.applied(cur)
	if fn := s.observer; fn != nil {
		fn(obs)
	}
	return nil
}

// batchScanWindow bounds how many sequence numbers one ScanBatches
// gather materializes at a time (it extends to cover a single oversized
// batch).
const batchScanWindow = 8192

// ScanBatches streams the store's admitted batches whose last sequence
// number falls in (after, upto], each with its rows' sequence numbers,
// in admission order — the replication source. Batch boundaries are the
// original AddAll cuts; rows retention has since pruned are simply
// absent (a fully pruned batch yields nothing), and the follower's
// ApplyAt jumps the hole. Pair upto with Watermark() so no in-flight
// batch can straddle the cut.
func (s *Store) ScanBatches(after, upto uint64) iter.Seq2[[]uint64, []Observation] {
	return func(yield func([]uint64, []Observation) bool) {
		if after >= upto {
			return
		}
		s.wmMu.Lock()
		lo := sort.Search(len(s.batchEnds), func(i int) bool { return s.batchEnds[i] > after })
		hi := sort.Search(len(s.batchEnds), func(i int) bool { return s.batchEnds[i] > upto })
		ends := append([]uint64(nil), s.batchEnds[lo:hi]...)
		s.wmMu.Unlock()

		start := after
		for i := 0; i < len(ends); {
			// One gather covers every batch ending within the window; a
			// batch bigger than the window gets a window of its own.
			winEnd := start + batchScanWindow
			j := i
			for j < len(ends) && ends[j] <= winEnd {
				j++
			}
			if j == i {
				j = i + 1
			}
			winEnd = ends[j-1]
			var seqs []uint64
			var obs []Observation
			for seq, o := range s.ScanRange(Query{Round: -1}, start, winEnd) {
				seqs = append(seqs, seq)
				obs = append(obs, o)
			}
			k := 0
			for _, end := range ends[i:j] {
				m := k
				for m < len(seqs) && seqs[m] <= end {
					m++
				}
				if m > k && !yield(seqs[k:m], obs[k:m]) {
					return
				}
				k = m
			}
			start, i = winEnd, j
		}
	}
}

// ScanBatches delegates to the memory engine (see Store.ScanBatches) —
// the durable primary serves the replication stream off its read path.
func (d *Durable) ScanBatches(after, upto uint64) iter.Seq2[[]uint64, []Observation] {
	return d.mem.Load().ScanBatches(after, upto)
}

// Epoch returns the directory's replication identity.
func (d *Durable) Epoch() uint64 { return d.epoch }
