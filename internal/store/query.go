package store

import (
	"iter"
	"sort"
	"time"
)

// Query filters observations. Zero-valued fields match everything.
type Query struct {
	// Domain restricts to one retailer.
	Domain string
	// SKU restricts to one product.
	SKU string
	// Source restricts to one campaign type.
	Source string
	// VP restricts to one vantage point ID.
	VP string
	// Tenant restricts to one contributing tenant's observations.
	Tenant string
	// Round restricts to one crawl round when >= 0 (use -1 to match all).
	Round int
	// OnlyOK drops failed extractions.
	OnlyOK bool
	// Since and Until bound the observation time: [Since, Until) —
	// Since inclusive, Until exclusive, zero values unbounded. On scans
	// with no narrower index, the range pushes down to time-bucket
	// selection: buckets entirely outside the range are skipped without
	// touching a row (see ScanStats).
	Since time.Time
	Until time.Time
}

// match reports whether an observation satisfies the query.
func (q Query) match(o *Observation) bool {
	if q.Domain != "" && o.Domain != q.Domain {
		return false
	}
	if q.SKU != "" && o.SKU != q.SKU {
		return false
	}
	if q.Source != "" && o.Source != q.Source {
		return false
	}
	if q.VP != "" && o.VP != q.VP {
		return false
	}
	if q.Tenant != "" && o.Tenant != q.Tenant {
		return false
	}
	if q.Round >= 0 && o.Round != q.Round {
		return false
	}
	if q.OnlyOK && !o.OK {
		return false
	}
	if !q.Since.IsZero() && o.Time.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !o.Time.Before(q.Until) {
		return false
	}
	return true
}

// timeBounded reports whether the query carries a time range at all.
func (q Query) timeBounded() bool { return !q.Since.IsZero() || !q.Until.IsZero() }

// bucketOverlaps reports whether the bucket [start, start+secs) can hold
// rows in the query's time range.
func (q Query) bucketOverlaps(start, secs int64) bool {
	if !q.Since.IsZero() && start+secs <= q.Since.Unix() {
		return false // bucket ends before the range starts
	}
	if !q.Until.IsZero() {
		u := q.Until.Unix()
		// Until is exclusive; a bucket starting at or past it holds only
		// rows >= Until — unless Until has sub-second precision, which
		// reaches u's second itself.
		if start >= u && !(start == u && q.Until.Nanosecond() > 0) {
			return false
		}
	}
	return true
}

// seqObs carries one matched observation with its sequence number
// through a cross-shard merge.
type seqObs struct {
	seq uint64
	obs Observation
}

// collect gathers the shard's matching observations under its read lock,
// choosing the narrowest index for the query: a product's source posting,
// a product group, a domain order, a source order, a time-bucket
// selection, or the shard order.
func (s *Store) collect(si int, q Query, out []seqObs) []seqObs {
	return s.collectRange(si, q, 0, ^uint64(0), out)
}

// collectRange is collect restricted to sequence numbers in
// (after, upto] — the windowed form the streaming/pagination layer uses
// to bound how much one gather materializes.
func (s *Store) collectRange(si int, q Query, after, upto uint64, out []seqObs) []seqObs {
	sh := &s.shards[si]
	inWindow := func(seq uint64) bool { return seq > after && seq <= upto }
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if q.Domain != "" && q.SKU != "" {
		g := sh.groups[Key{Domain: q.Domain, SKU: q.SKU}]
		if g == nil {
			return out
		}
		if q.Source != "" {
			for _, pos := range g.bySource[q.Source] {
				if o := &g.obs[pos]; inWindow(g.seqs[pos]) && q.match(o) {
					out = append(out, seqObs{seq: g.seqs[pos], obs: *o})
				}
			}
			return out
		}
		for pos := range g.obs {
			if o := &g.obs[pos]; inWindow(g.seqs[pos]) && q.match(o) {
				out = append(out, seqObs{seq: g.seqs[pos], obs: *o})
			}
		}
		return out
	}
	var order []gref
	switch {
	case q.Domain != "":
		di := sh.byDomain[q.Domain]
		if di == nil {
			return out
		}
		order = di.order
	case q.Source != "":
		order = sh.bySource[q.Source]
	case q.timeBounded():
		// Time-range pushdown: with no narrower index to walk, the range
		// predicate selects whole bucket partitions instead of testing
		// every row — a cold bucket outside the range is never touched.
		// Rows re-sort by sequence at the Scan/ScanRange layer, so bucket
		// visit order is free.
		for b, refs := range sh.byBucket {
			if !q.bucketOverlaps(b, s.bucketSecs) {
				s.segSkipped.Add(1)
				continue
			}
			s.segScanned.Add(1)
			for _, r := range refs {
				if !inWindow(r.seq()) {
					continue
				}
				if o := r.obs(); q.match(o) {
					out = append(out, seqObs{seq: r.seq(), obs: *o})
				}
			}
		}
		return out
	default:
		order = sh.order
	}
	for _, r := range order {
		if !inWindow(r.seq()) {
			continue
		}
		if o := r.obs(); q.match(o) {
			out = append(out, seqObs{seq: r.seq(), obs: *o})
		}
	}
	return out
}

// Scan streams matching observations in insertion order. Domain-scoped
// queries walk a single shard's indexes; global queries merge candidates
// across shards by sequence number. Each shard is snapshotted under its
// read lock before any element is yielded, so the caller's loop body
// never runs under a store lock and observations admitted mid-iteration
// do not appear.
func (s *Store) Scan(q Query) iter.Seq[Observation] {
	return func(yield func(Observation) bool) {
		var rows []seqObs
		if q.Domain != "" {
			rows = s.collect(int(shardIdx(q.Domain)), q, nil)
		} else {
			for si := range s.shards {
				rows = s.collect(si, q, rows)
			}
		}
		// Index orders follow shard append order, which is sequence order
		// for every serial caller; sorting is a near-no-op then and
		// restores global insertion order across shards and after
		// concurrent batch interleavings.
		sort.Slice(rows, func(a, b int) bool { return rows[a].seq < rows[b].seq })
		for i := range rows {
			if !yield(rows[i].obs) {
				return
			}
		}
	}
}

// ScanRange streams matching observations whose sequence numbers fall
// in (after, upto], in sequence order, yielding each with its sequence
// number. It is the windowed face of Scan: the HTTP layer pages and
// streams large datasets window by window, so no single gather
// materializes more than one window of rows. Pair upto with Watermark()
// to read only the stable prefix (every sequence at or below the
// watermark is applied and can never be reordered by an in-flight
// batch).
func (s *Store) ScanRange(q Query, after, upto uint64) iter.Seq2[uint64, Observation] {
	return func(yield func(uint64, Observation) bool) {
		if after >= upto {
			return
		}
		var rows []seqObs
		if q.Domain != "" {
			rows = s.collectRange(int(shardIdx(q.Domain)), q, after, upto, nil)
		} else {
			for si := range s.shards {
				rows = s.collectRange(si, q, after, upto, rows)
			}
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a].seq < rows[b].seq })
		for i := range rows {
			if !yield(rows[i].seq, rows[i].obs) {
				return
			}
		}
	}
}

// Filter returns matching observations in insertion order.
func (s *Store) Filter(q Query) []Observation {
	var out []Observation
	for o := range s.Scan(q) {
		out = append(out, o)
	}
	return out
}

// All returns every observation. The paper's analysis scripts iterate the
// whole dataset; so do ours. Prefer Scan(Query{Round: -1}) to stream.
func (s *Store) All() []Observation {
	return s.Filter(Query{Round: -1})
}

// Domains returns the distinct domains observed, sorted. O(domains), off
// the per-shard domain indexes.
func (s *Store) Domains() []string {
	set := make(map[string]struct{})
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for d := range sh.byDomain {
			set[d] = struct{}{}
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Products returns the distinct product keys of a domain, sorted by SKU.
// O(products of the domain), off the domain's SKU index.
func (s *Store) Products(domain string) []Key {
	sh := &s.shards[shardIdx(domain)]
	sh.mu.RLock()
	di := sh.byDomain[domain]
	var skus []string
	if di != nil {
		skus = make([]string, 0, len(di.skus))
		for sku := range di.skus {
			skus = append(skus, sku)
		}
	}
	sh.mu.RUnlock()
	if len(skus) == 0 {
		return nil
	}
	sort.Strings(skus)
	out := make([]Key, len(skus))
	for i, sku := range skus {
		out[i] = Key{Domain: domain, SKU: sku}
	}
	return out
}

// groupView is one product group snapshotted under the shard lock:
// immutable slice headers into the group's append-only storage.
type groupView struct {
	k    Key
	obs  []Observation
	seqs []uint64
	// posts holds the source-restricted positions; nil when the whole
	// group is selected.
	posts []int32
}

// makeView snapshots one product group under the shard lock, restricted
// to a source. The second return is false when the group has nothing for
// the source; the third is the gather size the view contributes.
func makeView(k Key, g *keyGroup, source string) (groupView, bool, int) {
	gv := groupView{k: k, obs: g.obs, seqs: g.seqs}
	if source != "" {
		posts := g.bySource[source]
		if len(posts) == 0 {
			return groupView{}, false, 0
		}
		if len(posts) < len(g.obs) {
			gv.posts = posts
			return gv, true, len(posts)
		}
	}
	return gv, true, 0
}

// yieldViews materializes and yields snapshotted group views, lock-free.
// It returns false when the consumer stopped the iteration.
func yieldViews(views []groupView, gathered int, yield func(Key, []Observation) bool) bool {
	// One arena for all source-restricted gathers: group-sized
	// allocations are what GC pressure is made of.
	arena := make([]Observation, 0, gathered)
	for _, gv := range views {
		group := gv.obs
		if gv.posts != nil {
			// Source-restricted gather, local to the group's
			// contiguous storage.
			start := len(arena)
			for _, pos := range gv.posts {
				arena = append(arena, gv.obs[pos])
			}
			group = arena[start:len(arena):len(arena)]
		} else {
			// Zero-copy: cap the view so a caller append cannot
			// collide with the store's next write.
			group = group[:len(group):len(group)]
		}
		if !gv.inOrder() {
			group = gv.sortedCopy(group)
		}
		if !yield(gv.k, group) {
			return false
		}
	}
	return true
}

// Groups streams one product at a time: the product key plus its
// observations (restricted to one source when source != "") in insertion
// order. This is the streaming face of GroupByProduct: the analysis
// figures fold each group as it arrives instead of materializing the
// whole partition, and a group whose observations all match is yielded
// as a zero-copy view of the store's own memory. Treat yielded slices as
// read-only and do not append to them. Group iteration order is
// unspecified, as map iteration was before.
func (s *Store) Groups(source string) iter.Seq2[Key, []Observation] {
	return func(yield func(Key, []Observation) bool) {
		for si := range s.shards {
			sh := &s.shards[si]
			sh.mu.RLock()
			views := make([]groupView, 0, len(sh.groups))
			gathered := 0
			for k, g := range sh.groups {
				gv, ok, n := makeView(k, g, source)
				if !ok {
					continue
				}
				gathered += n
				views = append(views, gv)
			}
			sh.mu.RUnlock()
			if !yieldViews(views, gathered, yield) {
				return
			}
		}
	}
}

// DomainGroups streams one domain's product groups (restricted to one
// source when source != ""), touching only the domain's shard and its
// SKU index — O(products of the domain), not O(dataset). Fig. 6 and
// Fig. 8 run on this.
func (s *Store) DomainGroups(domain, source string) iter.Seq2[Key, []Observation] {
	return func(yield func(Key, []Observation) bool) {
		sh := &s.shards[shardIdx(domain)]
		sh.mu.RLock()
		di := sh.byDomain[domain]
		var views []groupView
		gathered := 0
		if di != nil {
			views = make([]groupView, 0, len(di.skus))
			for sku := range di.skus {
				k := Key{Domain: domain, SKU: sku}
				gv, ok, n := makeView(k, sh.groups[k], source)
				if !ok {
					continue
				}
				gathered += n
				views = append(views, gv)
			}
		}
		sh.mu.RUnlock()
		yieldViews(views, gathered, yield)
	}
}

// inOrder reports whether the view's selected observations already
// follow global sequence order — always true for serial writers; only
// concurrent batch interleavings on one product can break it.
func (gv groupView) inOrder() bool {
	if gv.posts != nil {
		for j := 1; j < len(gv.posts); j++ {
			if gv.seqs[gv.posts[j-1]] > gv.seqs[gv.posts[j]] {
				return false
			}
		}
		return true
	}
	for j := 1; j < len(gv.seqs); j++ {
		if gv.seqs[j-1] > gv.seqs[j] {
			return false
		}
	}
	return true
}

// sortedCopy re-sorts the selected group into sequence order (copying
// first when the group was a zero-copy view).
func (gv groupView) sortedCopy(group []Observation) []Observation {
	seqs := make([]uint64, len(group))
	if gv.posts != nil {
		for j, pos := range gv.posts {
			seqs[j] = gv.seqs[pos]
		}
	} else {
		group = append([]Observation(nil), group...)
		copy(seqs, gv.seqs)
	}
	sort.Sort(&bySeq{seqs: seqs, obs: group})
	return group
}

// bySeq sorts a group and its sequence numbers together.
type bySeq struct {
	seqs []uint64
	obs  []Observation
}

func (b *bySeq) Len() int           { return len(b.seqs) }
func (b *bySeq) Less(i, j int) bool { return b.seqs[i] < b.seqs[j] }
func (b *bySeq) Swap(i, j int) {
	b.seqs[i], b.seqs[j] = b.seqs[j], b.seqs[i]
	b.obs[i], b.obs[j] = b.obs[j], b.obs[i]
}

// GroupByProduct partitions observations of one source by product key.
// It is a materializing adapter over Groups; the yielded slices may be
// zero-copy views — treat them as read-only.
func (s *Store) GroupByProduct(source string) map[Key][]Observation {
	out := make(map[Key][]Observation)
	for k, g := range s.Groups(source) {
		out[k] = g
	}
	return out
}
