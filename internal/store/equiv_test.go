package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// seedObservations builds a deterministic pseudo-campaign mixing crawl
// rounds, crowd checks, failures and odd currencies across enough domains
// to populate every shard.
func seedObservations(seed int64, n int) []Observation {
	rng := rand.New(rand.NewSource(seed))
	domains := make([]string, 37)
	for i := range domains {
		domains[i] = fmt.Sprintf("www.shop%02d.example", i)
	}
	sources := []string{SourceCrowd, SourceCrawl, SourceLogin, SourcePersona}
	vps := []string{"us-bos", "us-nyc", "fi-tam", "uk-lon", "de-ber", "br-sao"}
	currencies := []string{"USD", "EUR", "GBP", "BRL", "XXX", ""}
	base := time.Date(2013, 1, 10, 8, 0, 0, 0, time.UTC)

	out := make([]Observation, n)
	for i := range out {
		d := domains[rng.Intn(len(domains))]
		src := sources[rng.Intn(len(sources))]
		round := -1
		if src == SourceCrawl {
			round = rng.Intn(7)
		}
		o := Observation{
			Domain: d, SKU: fmt.Sprintf("P-%d", rng.Intn(50)),
			URL: "http://" + d + "/product/x",
			VP:  vps[rng.Intn(len(vps))], VPLabel: "label",
			Country: "US", City: "Boston",
			PriceUnits: int64(rng.Intn(100000)),
			Currency:   currencies[rng.Intn(len(currencies))],
			Time:       base.Add(time.Duration(rng.Intn(100*24)) * time.Hour),
			Round:      round, Source: src,
			OK: rng.Intn(10) != 0,
		}
		if !o.OK {
			o.Err = "extract: no price found"
			o.PriceUnits, o.Currency = 0, ""
		}
		if src == SourceCrowd {
			o.UserCountry = "FI"
		}
		out[i] = o
	}
	return out
}

// fillBoth feeds the same observation sequence to the engine under test
// and the linear oracle, mixing Add and AddAll call shapes.
func fillBoth(t *testing.T, st Backend, obs []Observation) *linearRef {
	t.Helper()
	ref := &linearRef{}
	i := 0
	for i < len(obs) {
		if i%3 == 0 {
			end := i + 14
			if end > len(obs) {
				end = len(obs)
			}
			st.AddAll(obs[i:end])
			ref.addAll(obs[i:end])
			i = end
		} else {
			st.Add(obs[i])
			ref.add(obs[i])
			i++
		}
	}
	return ref
}

// equivQueries is the query matrix the engines are compared under.
func equivQueries() []Query {
	qs := []Query{
		{Round: -1},
		{Round: 3},
		{Round: -1, OnlyOK: true},
		{Round: -1, Source: SourceCrawl},
		{Round: -1, Source: SourceCrowd, OnlyOK: true},
		{Round: -1, VP: "fi-tam"},
		{Round: -1, SKU: "P-7"},
		{Round: -1, Domain: "www.shop03.example"},
		{Round: 2, Domain: "www.shop03.example", OnlyOK: true},
		{Round: -1, Domain: "www.shop11.example", SKU: "P-4"},
		{Round: -1, Domain: "www.shop11.example", SKU: "P-4", Source: SourceCrawl},
		{Round: -1, Domain: "no.such.domain"},
		{Round: -1, Domain: "www.shop05.example", SKU: "no-such-sku"},
		{Round: -1, Domain: "www.shop05.example", Source: SourceLogin, VP: "us-bos"},
	}
	return qs
}

// TestEquivalenceWithLinearScan asserts both engines answer every query
// exactly as the seed's linear scan did on the same data.
func TestEquivalenceWithLinearScan(t *testing.T) {
	runBackends(t, func(t *testing.T, newBackend newBackendFunc) {
		st := newBackend(t)
		ref := fillBoth(t, st, seedObservations(42, 5000))
		assertMatchesOracle(t, st, ref)
	})
}

// assertMatchesOracle runs the full query matrix of an engine against the
// linear oracle.
func assertMatchesOracle(t *testing.T, st Reader, ref *linearRef) {
	t.Helper()
	if st.Len() != len(ref.obs) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(ref.obs))
	}
	if st.LenOK() != ref.lenOK() {
		t.Fatalf("LenOK = %d, want %d", st.LenOK(), ref.lenOK())
	}
	for _, q := range equivQueries() {
		got, want := st.Filter(q), ref.filter(q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Filter(%+v): %d rows, want %d (or order mismatch)", q, len(got), len(want))
		}
		// Scan must stream the identical sequence.
		var scanned []Observation
		for o := range st.Scan(q) {
			scanned = append(scanned, o)
		}
		if !reflect.DeepEqual(scanned, want) {
			t.Fatalf("Scan(%+v) diverged from linear scan", q)
		}
	}
	if got, want := st.Domains(), ref.domains(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Domains: %v want %v", got, want)
	}
	for _, d := range ref.domains() {
		if got, want := st.Products(d), ref.products(d); !reflect.DeepEqual(got, want) {
			t.Fatalf("Products(%s): %v want %v", d, got, want)
		}
	}
	for _, src := range []string{"", SourceCrowd, SourceCrawl, SourceLogin, SourcePersona} {
		got, want := st.GroupByProduct(src), ref.groupByProduct(src)
		if len(got) != len(want) {
			t.Fatalf("GroupByProduct(%q): %d keys, want %d", src, len(got), len(want))
		}
		for k, g := range want {
			if !reflect.DeepEqual(got[k], g) {
				t.Fatalf("GroupByProduct(%q) key %v diverged", src, k)
			}
		}
		total, okN := st.LenSource(src)
		if src != "" {
			wantRows := ref.filter(Query{Round: -1, Source: src})
			wantOK := 0
			for _, o := range wantRows {
				if o.OK {
					wantOK++
				}
			}
			if total != len(wantRows) || okN != wantOK {
				t.Fatalf("LenSource(%q) = (%d,%d), want (%d,%d)", src, total, okN, len(wantRows), wantOK)
			}
		}
	}
	for _, vp := range []string{"us-bos", "fi-tam", "no-such-vp"} {
		if got, want := st.LenVP(vp), len(ref.filter(Query{Round: -1, VP: vp})); got != want {
			t.Fatalf("LenVP(%s) = %d, want %d", vp, got, want)
		}
	}
	// DomainGroups must equal the domain's slice of the full grouping.
	for _, d := range []string{"www.shop03.example", "www.shop11.example", "no.such.domain"} {
		for _, src := range []string{"", SourceCrawl} {
			want := map[Key][]Observation{}
			for k, g := range ref.groupByProduct(src) {
				if k.Domain == d {
					want[k] = g
				}
			}
			got := map[Key][]Observation{}
			for k, g := range st.DomainGroups(d, src) {
				got[k] = g
			}
			if len(got) != len(want) {
				t.Fatalf("DomainGroups(%s,%q): %d keys, want %d", d, src, len(got), len(want))
			}
			for k, g := range want {
				if !reflect.DeepEqual(got[k], g) {
					t.Fatalf("DomainGroups(%s,%q) key %v diverged", d, src, k)
				}
			}
		}
	}
}

// TestJSONLByteIdentical asserts both engines serialize to exactly the
// bytes the seed's single-slice engine produced for the same sequence of
// adds — the dataset format is unchanged, memory or durable.
func TestJSONLByteIdentical(t *testing.T) {
	runBackends(t, func(t *testing.T, newBackend newBackendFunc) {
		st := newBackend(t)
		ref := fillBoth(t, st, seedObservations(7, 3000))

		var got, want bytes.Buffer
		if err := st.WriteJSONL(&got); err != nil {
			t.Fatal(err)
		}
		if err := ref.writeJSONL(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("JSONL bytes diverged: %d vs %d bytes", got.Len(), want.Len())
		}

		// Round trip: load the dataset back and re-serialize; the bytes must
		// survive unchanged (failed extractions and odd currencies included).
		back, err := ReadJSONL(bytes.NewReader(got.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var again bytes.Buffer
		if err := back.WriteJSONL(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), got.Bytes()) {
			t.Fatal("JSONL round trip not byte-identical")
		}
	})
}

// TestJSONLPreservesFailuresAndUnknownCurrencies pins the edge cases a
// lossy index rebuild would drop: failed extractions keep their error
// text, unknown currencies survive verbatim, and the new user-country
// field round-trips (and is omitted when empty).
func TestJSONLPreservesFailuresAndUnknownCurrencies(t *testing.T) {
	runBackends(t, testJSONLPreservesEdgeRows)
}

func testJSONLPreservesEdgeRows(t *testing.T, newBackend newBackendFunc) {
	st := newBackend(t)
	fail := Observation{
		Domain: "a.com", SKU: "A-1", VP: "us-bos",
		Time:  time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC),
		Round: 2, Source: SourceCrawl,
		OK: false, Err: "extract: currency mismatch: page shows CZK",
	}
	weird := Observation{
		Domain: "a.com", SKU: "A-2", VP: "fi-tam",
		PriceUnits: 999, Currency: "ZZZ",
		Time:  time.Date(2013, 2, 2, 0, 0, 0, 0, time.UTC),
		Round: -1, Source: SourceCrowd, UserCountry: "BR", OK: true,
	}
	st.AddAll([]Observation{fail, weird})

	var buf bytes.Buffer
	if err := st.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"user_country"`)) != true {
		t.Fatal("user_country not serialized for crowd row")
	}
	if bytes.Count(buf.Bytes(), []byte(`"user_country"`)) != 1 {
		t.Fatal("user_country must be omitted when empty")
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	all := back.All()
	if len(all) != 2 {
		t.Fatalf("round trip rows = %d", len(all))
	}
	if got := all[0]; !got.Time.Equal(fail.Time) || got.Err != fail.Err || got.OK {
		t.Fatalf("failure row mangled: %+v", got)
	}
	if got := all[1]; got.Currency != "ZZZ" || got.UserCountry != "BR" {
		t.Fatalf("unknown-currency row mangled: %+v", got)
	}
	if _, ok := all[1].Amount(); ok {
		t.Fatal("unknown currency must not reconstruct an amount")
	}
	if back.LenOK() != 1 {
		t.Fatalf("LenOK = %d", back.LenOK())
	}
}
