package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The write-ahead log is a sequence of framed records, one per AddAll
// batch per shard:
//
//	offset 0  uint32 LE  payload length
//	offset 4  uint32 LE  CRC-32C (Castagnoli) of the payload
//	offset 8  payload    JSON walRecord
//
// A record is the unit of atomicity: recovery replays complete records
// and discards everything from the first frame that is short, oversized,
// checksum-broken or undecodable — the torn tail a crash mid-write (or a
// lost page-cache flush) leaves behind. Torn tails are expected crash
// artifacts, not corruption errors; recovery reports how many bytes it
// discarded and carries on.

// walRecord is one logged batch: the observations of a single AddAll
// call that landed in one shard, with the global sequence numbers the
// memory engine assigned them. Sequences let recovery re-interleave
// concurrent batches across the per-shard logs in admission order.
type walRecord struct {
	Seqs []uint64      `json:"seqs"`
	Obs  []Observation `json:"obs"`
	// W is the sender's applied watermark at frame time — replication
	// streams use it for lag accounting and heartbeats (an empty record
	// with only W set). Durable logs never set it, so on-disk WAL bytes
	// are unchanged.
	W uint64 `json:"w,omitempty"`
}

// walHeaderSize is the framing overhead per record.
const walHeaderSize = 8

// maxWALRecord bounds a single record's payload. The largest real batch
// is a JSONL bulk load chunk (readBatch observations); 64 MiB is far
// above any legitimate record and small enough that a corrupt length
// field cannot make recovery attempt a giant allocation.
const maxWALRecord = 64 << 20

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// errTornRecord marks a frame that ends (or breaks) before completing —
// the signal to stop replaying a log and truncate mentally at this point.
var errTornRecord = errors.New("store: torn wal record")

// appendWALRecord frames a record onto buf and returns the extended
// slice. The reader's frame limit is enforced here too: a frame the
// recovery path would reject as torn must never be written (and claimed
// durable) in the first place.
func appendWALRecord(buf []byte, seqs []uint64, obs []Observation) ([]byte, error) {
	return appendFramed(buf, walRecord{Seqs: seqs, Obs: obs})
}

// appendFramed frames an arbitrary record — the shared encoder behind
// the durable log and the replication stream.
func appendFramed(buf []byte, rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("store: encode wal record: %w", err)
	}
	if len(payload) > maxWALRecord {
		return buf, fmt.Errorf("store: wal record of %d bytes exceeds the %d-byte frame limit; split the batch", len(payload), maxWALRecord)
	}
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, walCRC))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// parseWALRecord decodes the first framed record of b, returning the
// record and the bytes that follow it. Any defect — short header, absurd
// length, short payload, checksum mismatch, broken JSON, sequence count
// not matching the observation count — returns errTornRecord: the frame
// boundary cannot be trusted past a bad frame, so the caller must stop.
func parseWALRecord(b []byte) (rec walRecord, rest []byte, err error) {
	if len(b) < walHeaderSize {
		return walRecord{}, b, errTornRecord
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if n > maxWALRecord || uint64(walHeaderSize)+uint64(n) > uint64(len(b)) {
		return walRecord{}, b, errTornRecord
	}
	payload := b[walHeaderSize : walHeaderSize+n]
	if crc32.Checksum(payload, walCRC) != sum {
		return walRecord{}, b, errTornRecord
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return walRecord{}, b, errTornRecord
	}
	if len(rec.Seqs) != len(rec.Obs) {
		return walRecord{}, b, errTornRecord
	}
	return rec, b[walHeaderSize+n:], nil
}

// replayWAL parses every complete record of one shard's log and reports
// how many tail bytes were discarded as torn.
func replayWAL(data []byte) (recs []walRecord, discarded int64) {
	for len(data) > 0 {
		rec, rest, err := parseWALRecord(data)
		if err != nil {
			return recs, int64(len(data))
		}
		recs = append(recs, rec)
		data = rest
	}
	return recs, 0
}

// readWAL loads one shard's log from r and replays it.
func readWAL(r io.Reader) (recs []walRecord, discarded int64, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("store: read wal: %w", err)
	}
	recs, discarded = replayWAL(data)
	return recs, discarded, nil
}
