package store

import (
	"io"
	"iter"
	"sync"
	"testing"
)

// newBackendFunc builds one fresh, empty backend for a test run.
type newBackendFunc func(t *testing.T) Backend

// runBackends runs a test body once per Backend implementation: the
// in-memory engine, the durable engine on a temp data directory, and a
// replicated pair whose reads come from a follower synced through the
// ScanBatches/ApplyAt replication path. The durable run closes the store
// at cleanup and fails the test on any sticky write error, so every
// matrixed test doubles as a durability smoke test; the replica run
// makes every matrixed test assert that a caught-up follower answers
// queries exactly like the engine it follows.
func runBackends(t *testing.T, fn func(t *testing.T, newBackend newBackendFunc)) {
	t.Run("memory", func(t *testing.T) {
		fn(t, func(t *testing.T) Backend { return New() })
	})
	t.Run("durable", func(t *testing.T) {
		fn(t, func(t *testing.T) Backend {
			d, _, err := OpenDurable(t.TempDir(), DurableOptions{Fsync: FsyncNever})
			if err != nil {
				t.Fatalf("open durable: %v", err)
			}
			t.Cleanup(func() {
				if err := d.Close(); err != nil {
					t.Errorf("close durable: %v", err)
				}
			})
			return d
		})
	})
	t.Run("replica", func(t *testing.T) {
		fn(t, func(t *testing.T) Backend {
			return &replicaBackend{primary: New(), follower: New()}
		})
	})
}

// replicaBackend is a primary/follower pair behind the Backend contract:
// writes land on the primary, each write synchronously pumps the new
// batches to the follower over the replication path, and every read is
// answered by the follower. The pump serializes on mu — the follower has
// one applier, matching the real stream's single connection.
type replicaBackend struct {
	mu       sync.Mutex
	primary  *Store
	follower *Store
	cursor   uint64
}

func (rb *replicaBackend) Add(o Observation) { rb.AddAll([]Observation{o}) }

func (rb *replicaBackend) AddAll(os []Observation) {
	rb.primary.AddAll(os)
	rb.mu.Lock()
	defer rb.mu.Unlock()
	upto := rb.primary.Watermark()
	for seqs, obs := range rb.primary.ScanBatches(rb.cursor, upto) {
		if err := rb.follower.ApplyAt(seqs, obs); err != nil {
			panic("replicaBackend: " + err.Error())
		}
	}
	rb.cursor = upto
}

// SetObserver installs the hook on the follower: derived state hangs off
// the engine that serves reads, exactly as on a real follower.
func (rb *replicaBackend) SetObserver(fn Observer) { rb.follower.SetObserver(fn) }

func (rb *replicaBackend) Len() int                           { return rb.follower.Len() }
func (rb *replicaBackend) LenOK() int                         { return rb.follower.LenOK() }
func (rb *replicaBackend) LenSource(source string) (int, int) { return rb.follower.LenSource(source) }
func (rb *replicaBackend) LenVP(vp string) int                { return rb.follower.LenVP(vp) }
func (rb *replicaBackend) Scan(q Query) iter.Seq[Observation] { return rb.follower.Scan(q) }
func (rb *replicaBackend) ScanRange(q Query, after, upto uint64) iter.Seq2[uint64, Observation] {
	return rb.follower.ScanRange(q, after, upto)
}
func (rb *replicaBackend) Watermark() uint64            { return rb.follower.Watermark() }
func (rb *replicaBackend) Filter(q Query) []Observation { return rb.follower.Filter(q) }
func (rb *replicaBackend) All() []Observation           { return rb.follower.All() }
func (rb *replicaBackend) Domains() []string            { return rb.follower.Domains() }
func (rb *replicaBackend) Products(domain string) []Key { return rb.follower.Products(domain) }
func (rb *replicaBackend) GroupByProduct(source string) map[Key][]Observation {
	return rb.follower.GroupByProduct(source)
}
func (rb *replicaBackend) Groups(source string) iter.Seq2[Key, []Observation] {
	return rb.follower.Groups(source)
}
func (rb *replicaBackend) DomainGroups(domain, source string) iter.Seq2[Key, []Observation] {
	return rb.follower.DomainGroups(domain, source)
}
func (rb *replicaBackend) WriteJSONL(w io.Writer) error { return rb.follower.WriteJSONL(w) }
