package store

import "testing"

// newBackendFunc builds one fresh, empty backend for a test run.
type newBackendFunc func(t *testing.T) Backend

// runBackends runs a test body once per Backend implementation: the
// in-memory engine and the durable engine on a temp data directory. The
// durable run closes the store at cleanup and fails the test on any
// sticky write error, so every matrixed test doubles as a durability
// smoke test.
func runBackends(t *testing.T, fn func(t *testing.T, newBackend newBackendFunc)) {
	t.Run("memory", func(t *testing.T) {
		fn(t, func(t *testing.T) Backend { return New() })
	})
	t.Run("durable", func(t *testing.T) {
		fn(t, func(t *testing.T) Backend {
			d, _, err := OpenDurable(t.TempDir(), DurableOptions{Fsync: FsyncNever})
			if err != nil {
				t.Fatalf("open durable: %v", err)
			}
			t.Cleanup(func() {
				if err := d.Close(); err != nil {
					t.Errorf("close durable: %v", err)
				}
			})
			return d
		})
	})
}
