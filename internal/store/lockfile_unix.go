//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDataDir takes an exclusive advisory lock on the directory's LOCK
// file, so two writable opens of the same data directory fail fast
// instead of checkpointing over (and sweeping) each other's live files.
// flock dies with the process — kill -9 included — so a crashed owner
// never blocks recovery with a stale lock. Read-only opens do not lock:
// one writer plus any number of inspectors is the supported shape.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data dir %s is owned by another live process: %w", dir, err)
	}
	return f, nil
}

// dataDirBusy reports whether a live process holds the directory's
// writer lock — read-only recovery uses it to label a torn-looking log
// tail as the owner's in-flight append rather than crash damage.
func dataDirBusy(dir string) bool {
	f, err := os.Open(filepath.Join(dir, "LOCK"))
	if err != nil {
		return false
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH|syscall.LOCK_NB); err != nil {
		return true // exclusively held: a writer is alive
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return false
}
