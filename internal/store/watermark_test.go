package store

import (
	"fmt"
	"testing"
)

func wmObs(domain, sku string, n int) []Observation {
	out := make([]Observation, n)
	for i := range out {
		out[i] = Observation{Domain: domain, SKU: fmt.Sprintf("%s-%d", sku, i), Round: -1, Currency: "USD", OK: true}
	}
	return out
}

// TestWatermarkHoldsForInflightBatch drives the exact interleaving that
// breaks naive offset cursors: batch A reserves sequences first, batch
// B reserves after but applies first. Until A applies, B's rows are
// visible to Scan while A's are not — so the applied watermark must
// stay below A's sequences, and a ScanRange capped at the watermark
// must serve neither batch.
func TestWatermarkHoldsForInflightBatch(t *testing.T) {
	s := New()
	s.AddAll(wmObs("pre.example.com", "P", 5)) // seqs 1..5, applied
	if got := s.Watermark(); got != 5 {
		t.Fatalf("watermark = %d, want 5", got)
	}

	// Batch A reserves 6..8 but has not applied yet (a writer between
	// reserve and the shard lock).
	a := wmObs("a.example.com", "A", 3)
	baseA := s.reserve(len(a))

	// Batch B reserves 9..11 and applies immediately — visible to Scan
	// before A.
	s.AddAll(wmObs("b.example.com", "B", 3))
	if got := s.Len(); got != 8 {
		t.Fatalf("len = %d (B should be visible)", got)
	}

	// The watermark must not move past A's reservation: serving seqs
	// 9..11 now and seqs 6..8 later would make a seq cursor skip A.
	if got := s.Watermark(); got != 5 {
		t.Fatalf("watermark = %d with batch A in flight, want 5", got)
	}
	var served []uint64
	for seq := range s.ScanRange(Query{Round: -1}, 0, s.Watermark()) {
		served = append(served, seq)
	}
	if len(served) != 5 {
		t.Fatalf("stable window served %d rows, want only the 5 applied pre-A: %v", len(served), served)
	}

	// A applies; the watermark covers everything and the full range
	// reads 11 rows in sequence order.
	s.addAllAt(a, baseA)
	if got := s.Watermark(); got != 11 {
		t.Fatalf("watermark = %d after A applied, want 11", got)
	}
	served = served[:0]
	for seq := range s.ScanRange(Query{Round: -1}, 0, s.Watermark()) {
		served = append(served, seq)
	}
	if len(served) != 11 {
		t.Fatalf("full range served %d rows, want 11", len(served))
	}
	for i, seq := range served {
		if seq != uint64(i+1) {
			t.Fatalf("row %d has seq %d, want %d (sequence order)", i, seq, i+1)
		}
	}
}

// TestScanRangeWindowsCoverScan: windowed reads, concatenated, must
// equal one full Scan — same rows, same order — for domain-scoped and
// global queries alike.
func TestScanRangeWindowsCoverScan(t *testing.T) {
	s := New()
	for i := 0; i < 40; i++ {
		s.AddAll(wmObs(fmt.Sprintf("d%d.example.com", i%7), fmt.Sprintf("S%d", i), 5))
	}
	for _, q := range []Query{
		{Round: -1},
		{Domain: "d3.example.com", Round: -1},
	} {
		want := s.Filter(q)
		upto := s.Watermark()
		var got []Observation
		const window = 17 // deliberately odd, not aligned to batches
		for start := uint64(0); start < upto; start += window {
			end := min(start+window, upto)
			prev := uint64(0)
			for seq, o := range s.ScanRange(q, start, end) {
				if seq <= start || seq > end {
					t.Fatalf("seq %d escaped window (%d, %d]", seq, start, end)
				}
				if seq <= prev {
					t.Fatalf("window yielded out of order: %d after %d", seq, prev)
				}
				prev = seq
				got = append(got, o)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: windows yielded %d rows, Scan %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: row %d differs between windowed and full scan", q, i)
			}
		}
	}
}
