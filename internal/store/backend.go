package store

import (
	"io"
	"iter"
)

// Reader is the query surface of an observation database — everything the
// analysis pipeline, the figures and the HTTP stats endpoint consume. It
// is satisfied by both engines (memory and durable); code that only reads
// should ask for a Reader so it can run over a live store or a dataset
// recovered read-only from disk.
type Reader interface {
	// Len counts all observations; LenOK only successful extractions.
	Len() int
	LenOK() int
	// LenSource counts one campaign source's observations and how many of
	// them carry a successfully extracted price.
	LenSource(source string) (total, ok int)
	// LenVP counts observations recorded from one vantage point.
	LenVP(vp string) int
	// Scan streams matching observations in insertion order.
	Scan(q Query) iter.Seq[Observation]
	// ScanRange streams matching observations with sequence numbers in
	// (after, upto], each with its sequence — the windowed scan the HTTP
	// layer pages and streams on.
	ScanRange(q Query, after, upto uint64) iter.Seq2[uint64, Observation]
	// Watermark is the largest sequence with every observation at or
	// below it applied; (cursor, Watermark] is the stable read window
	// under concurrent appends.
	Watermark() uint64
	// Filter returns matching observations in insertion order.
	Filter(q Query) []Observation
	// All returns every observation in insertion order.
	All() []Observation
	// Domains returns the distinct domains observed, sorted.
	Domains() []string
	// Products returns a domain's distinct product keys, sorted by SKU.
	Products(domain string) []Key
	// Groups streams one product group at a time (restricted to one
	// source when source != ""); yielded slices are read-only views.
	Groups(source string) iter.Seq2[Key, []Observation]
	// DomainGroups streams one domain's product groups.
	DomainGroups(domain, source string) iter.Seq2[Key, []Observation]
	// GroupByProduct materializes Groups into a map.
	GroupByProduct(source string) map[Key][]Observation
	// WriteJSONL serializes the dataset as JSON Lines in insertion order.
	WriteJSONL(w io.Writer) error
}

// Backend is the pluggable observation database: the Reader query surface
// plus the write path every campaign feeds. Two implementations exist —
// the in-memory sharded engine (*Store) and the durable engine (*Durable)
// that layers a per-shard write-ahead log and segmented snapshots under
// the same semantics. Both yield identical query results and identical
// JSONL bytes for the same sequence of adds.
type Backend interface {
	Reader
	// Add appends one observation.
	Add(o Observation)
	// AddAll appends a batch, preserving batch order.
	AddAll(os []Observation)
	// SetObserver installs the write-path observer: fn receives every
	// applied batch after its rows are visible to readers. Install before
	// concurrent writers start; nil removes it.
	SetObserver(fn Observer)
}

// Both engines implement the full Backend contract.
var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Durable)(nil)
)
