package store

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// linearRef is the historical single-slice store engine, kept verbatim as
// the behavioral oracle: the sharded, indexed engine must answer every
// query exactly as this linear scan does, and serialize to identical
// bytes for the same sequence of adds.
type linearRef struct {
	obs []Observation
}

func (s *linearRef) add(o Observation)       { s.obs = append(s.obs, o) }
func (s *linearRef) addAll(os []Observation) { s.obs = append(s.obs, os...) }

func (s *linearRef) lenOK() int {
	n := 0
	for _, o := range s.obs {
		if o.OK {
			n++
		}
	}
	return n
}

func (s *linearRef) filter(q Query) []Observation {
	var out []Observation
	for _, o := range s.obs {
		if q.Domain != "" && o.Domain != q.Domain {
			continue
		}
		if q.SKU != "" && o.SKU != q.SKU {
			continue
		}
		if q.Source != "" && o.Source != q.Source {
			continue
		}
		if q.VP != "" && o.VP != q.VP {
			continue
		}
		if q.Round >= 0 && o.Round != q.Round {
			continue
		}
		if q.OnlyOK && !o.OK {
			continue
		}
		out = append(out, o)
	}
	return out
}

func (s *linearRef) domains() []string {
	set := map[string]bool{}
	for _, o := range s.obs {
		set[o.Domain] = true
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

func (s *linearRef) products(domain string) []Key {
	set := map[Key]bool{}
	for _, o := range s.obs {
		if o.Domain == domain {
			set[Key{Domain: o.Domain, SKU: o.SKU}] = true
		}
	}
	out := make([]Key, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SKU < out[j].SKU })
	return out
}

func (s *linearRef) groupByProduct(source string) map[Key][]Observation {
	out := map[Key][]Observation{}
	for _, o := range s.obs {
		if source != "" && o.Source != source {
			continue
		}
		k := Key{Domain: o.Domain, SKU: o.SKU}
		out[k] = append(out[k], o)
	}
	return out
}

func (s *linearRef) writeJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range s.obs {
		if err := enc.Encode(&s.obs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
