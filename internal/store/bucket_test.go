package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// bucketBase is 2013-01-10 00:00 UTC — exactly on a 24h bucket boundary
// (unix 1357776000 is divisible by 86400), so "day k" below is bucket k.
var bucketBase = time.Date(2013, 1, 10, 0, 0, 0, 0, time.UTC)

// dayBatch builds perDay observations inside simulated day `day`, spread
// over enough domains that every shard holding data holds every day.
func dayBatch(day, perDay int) []Observation {
	out := make([]Observation, perDay)
	for i := range out {
		domain := fmt.Sprintf("www.shop%02d.example", i%32)
		out[i] = Observation{
			Domain: domain, SKU: fmt.Sprintf("P-%d", i%10),
			VP: fmt.Sprintf("vp-%d", i%6), Country: "US", City: "Boston",
			PriceUnits: int64(1000 + day*100 + i), Currency: "USD",
			Time:  bucketBase.Add(time.Duration(day)*24*time.Hour + time.Duration(i)*time.Second),
			Round: -1, Source: SourceCrowd, OK: true,
		}
	}
	return out
}

// TestRetentionPruneTable drives the retention edge cases through a real
// checkpoint: each case writes `days` daily buckets, compacts, and
// checks what survived — in memory, in the manifest, and after both a
// writable re-open and a read-only one (pruned buckets must never be
// replayed again, and the pruning totals must persist).
func TestRetentionPruneTable(t *testing.T) {
	const perDay = 50
	cases := []struct {
		name       string
		days       int
		opts       DurableOptions
		wantRows   int
		wantPruned int // buckets
		wantPrRows uint64
	}{
		// A checkpoint over an empty store: no buckets to write, none to
		// prune, and the empty manifest must re-open cleanly.
		{name: "empty-store", days: 0, opts: DurableOptions{RetainBytes: 1}},
		// A byte budget no bucket can fit: everything but the active
		// bucket is evicted, the active bucket itself is untouchable.
		{name: "prune-all-but-active", days: 6, opts: DurableOptions{RetainBytes: 1},
			wantRows: perDay, wantPruned: 5, wantPrRows: 5 * perDay},
		// The budget is smaller than the one bucket that exists: nothing
		// to evict (the active bucket is never a victim), nothing pruned.
		{name: "budget-smaller-than-one-bucket", days: 1, opts: DurableOptions{RetainBytes: 1},
			wantRows: perDay},
		// Age cutoff: newest observation is early on day 5; minus 48h
		// lands inside day 3, so days 0-2 (whose whole range is older)
		// go and days 3-5 stay.
		{name: "age-cutoff", days: 6, opts: DurableOptions{RetainAge: 48 * time.Hour},
			wantRows: 3 * perDay, wantPruned: 3, wantPrRows: 3 * perDay},
		// An age wider than the dataset: retention is on (checkpoints at
		// every rollover) but never finds a victim.
		{name: "age-keeps-all", days: 4, opts: DurableOptions{RetainAge: 30 * 24 * time.Hour},
			wantRows: 4 * perDay},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := tc.opts
			opts.Fsync = FsyncNever
			opts.CompactWALBytes = -1
			opts.BucketDuration = 24 * time.Hour
			d, _ := openDurable(t, dir, opts)
			for day := 0; day < tc.days; day++ {
				d.AddAll(dayBatch(day, perDay))
			}
			if err := d.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
			if got := d.Len(); got != tc.wantRows {
				t.Fatalf("live rows after prune = %d, want %d", got, tc.wantRows)
			}
			st := d.Stats()
			if int(st.PrunedBuckets) != tc.wantPruned || st.PrunedRows != tc.wantPrRows {
				t.Fatalf("pruned totals = %d buckets / %d rows, want %d / %d",
					st.PrunedBuckets, st.PrunedRows, tc.wantPruned, tc.wantPrRows)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			// Re-open writable: recovery must replay only live buckets and
			// keep the cumulative pruning totals.
			d2, rep := openDurable(t, dir, opts)
			if d2.Len() != tc.wantRows {
				t.Fatalf("writable re-open recovered %d rows, want %d", d2.Len(), tc.wantRows)
			}
			if rep.PrunedBuckets != uint64(tc.wantPruned) || rep.PrunedRows != tc.wantPrRows {
				t.Fatalf("re-open report pruned %d buckets / %d rows, want %d / %d",
					rep.PrunedBuckets, rep.PrunedRows, tc.wantPruned, tc.wantPrRows)
			}
			if err := d2.Close(); err != nil {
				t.Fatalf("re-close: %v", err)
			}

			ro, roRep, err := OpenReadOnly(dir)
			if err != nil {
				t.Fatalf("read-only open: %v", err)
			}
			if ro.Len() != tc.wantRows || roRep.PrunedBuckets != uint64(tc.wantPruned) {
				t.Fatalf("read-only recovered %d rows / %d pruned buckets, want %d / %d",
					ro.Len(), roRep.PrunedBuckets, tc.wantRows, tc.wantPruned)
			}
		})
	}
}

// TestScanRangeTimeWindowPushdown asserts the cold-bucket skip with the
// store's own counters: a query bounded to one day must scan only that
// day's bucket lists and skip every other bucket unopened. The fixture
// reuses one domain set across days, so every shard that holds data
// holds all seven buckets — making the scanned:skipped ratio exact.
func TestScanRangeTimeWindowPushdown(t *testing.T) {
	const days, perDay = 7, 160
	st := New()
	for day := 0; day < days; day++ {
		st.AddAll(dayBatch(day, perDay))
	}
	q := Query{
		Round: -1,
		Since: bucketBase.Add(6 * 24 * time.Hour),
		Until: bucketBase.Add(7 * 24 * time.Hour),
	}
	before := st.ScanStats()
	rows := 0
	for _, o := range st.ScanRange(q, 0, st.Watermark()) {
		if o.Time.Before(q.Since) || !o.Time.Before(q.Until) {
			t.Fatalf("row at %v outside [%v, %v)", o.Time, q.Since, q.Until)
		}
		rows++
	}
	after := st.ScanStats()
	if rows != perDay {
		t.Fatalf("window returned %d rows, want %d", rows, perDay)
	}
	scanned := after.SegmentsScanned - before.SegmentsScanned
	skipped := after.SegmentsSkipped - before.SegmentsSkipped
	if scanned == 0 || scanned > 16 {
		t.Fatalf("scanned %d bucket lists, want 1..16 (one bucket across the shards)", scanned)
	}
	if skipped != uint64(days-1)*scanned {
		t.Fatalf("skipped %d bucket lists, want exactly %d (the %d cold buckets of each scanned shard)",
			skipped, uint64(days-1)*scanned, days-1)
	}
}

// coldSegment returns the path and row count of one compressed segment.
func coldSegment(t *testing.T, dir string) (string, int) {
	t.Helper()
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range man.Buckets {
		if !b.Compressed {
			continue
		}
		return filepath.Join(dir, b.Segments[0].Name), b.Rows
	}
	t.Fatal("no compressed bucket in the manifest")
	return "", 0
}

// TestCompressedSegmentDamage covers recovery over damaged cold
// segments: a truncated gzip stream yields the rows decoded before the
// tear (shortfall counted as lost), and a destroyed header loses exactly
// that segment's rows — in both cases recovery proceeds instead of
// refusing the directory.
func TestCompressedSegmentDamage(t *testing.T) {
	const days, perDay = 3, 40
	build := func(t *testing.T) string {
		dir := t.TempDir()
		d, _ := openDurable(t, dir, DurableOptions{
			Fsync: FsyncNever, CompactWALBytes: -1, BucketDuration: 24 * time.Hour,
		})
		for day := 0; day < days; day++ {
			d.AddAll(dayBatch(day, perDay))
		}
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("truncated-stream", func(t *testing.T) {
		dir := build(t)
		seg, rows := coldSegment(t, dir)
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, info.Size()/2); err != nil {
			t.Fatal(err)
		}
		st, rep, err := OpenReadOnly(dir)
		if err != nil {
			t.Fatalf("open over truncated gzip: %v", err)
		}
		if rep.SegmentRowsLost == 0 || rep.SegmentRowsLost > rows {
			t.Fatalf("lost %d rows, want 1..%d", rep.SegmentRowsLost, rows)
		}
		if st.Len()+rep.SegmentRowsLost != days*perDay {
			t.Fatalf("recovered %d + lost %d != written %d", st.Len(), rep.SegmentRowsLost, days*perDay)
		}
	})

	t.Run("destroyed-header", func(t *testing.T) {
		dir := build(t)
		seg, rows := coldSegment(t, dir)
		if err := os.WriteFile(seg, []byte("not gzip at all"), 0o644); err != nil {
			t.Fatal(err)
		}
		st, rep, err := OpenReadOnly(dir)
		if err != nil {
			t.Fatalf("open over destroyed gzip header: %v", err)
		}
		if rep.SegmentRowsLost != rows {
			t.Fatalf("lost %d rows, want the whole segment (%d)", rep.SegmentRowsLost, rows)
		}
		if st.Len() != days*perDay-rows {
			t.Fatalf("recovered %d rows, want %d", st.Len(), days*perDay-rows)
		}
	})
}

// TestSweepRemovesOrphans plants the debris an interrupted compaction
// can leave — a segment from an uncommitted generation, a torn manifest
// temp file, a stale-generation WAL — and asserts the next open removes
// all of it while keeping every manifest-named file.
func TestSweepRemovesOrphans(t *testing.T) {
	dir := t.TempDir()
	opts := DurableOptions{Fsync: FsyncNever, CompactWALBytes: -1, BucketDuration: 24 * time.Hour}
	d, _ := openDurable(t, dir, opts)
	for day := 0; day < 3; day++ {
		d.AddAll(dayBatch(day, 30))
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	orphans := []string{
		segmentFile(99, bucketOf(bucketBase, 86400), 0, false),
		segmentFile(99, bucketOf(bucketBase, 86400), 1, true),
		manifestName + ".tmp",
		"wal-00000042-03.log",
	}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d2, _ := openDurable(t, dir, opts)
	defer d2.Close()
	if d2.Len() != 90 {
		t.Fatalf("recovered %d rows, want 90", d2.Len())
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the sweep (err=%v)", name, err)
		}
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range man.Buckets {
		for _, s := range b.Segments {
			if _, err := os.Stat(filepath.Join(dir, s.Name)); err != nil {
				t.Fatalf("manifest-named segment %s missing after sweep: %v", s.Name, err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s survived", e.Name())
		}
	}
}
