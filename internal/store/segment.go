package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// A snapshot is the dataset at one instant, compacted out of the WAL into
// plain JSON Lines — the exact bytes WriteJSONL emits, split into bounded
// segments so no single file grows without limit and a truncated tail
// costs at most one segment's worth of rows. The manifest is the commit
// record: a snapshot exists only once MANIFEST.json names its segments,
// and the manifest is replaced atomically (write temp, fsync, rename,
// fsync directory), so a crash mid-compaction leaves the previous
// generation fully intact and the half-written files orphaned.

// manifestName is the data directory's commit record.
const manifestName = "MANIFEST.json"

// manifest describes one committed snapshot generation.
type manifest struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// Generation increments with every committed snapshot; segment and
	// WAL file names embed it, so stale files of other generations are
	// recognizable orphans.
	Generation uint64 `json:"generation"`
	// Rows is the snapshot's observation count — rows are stored in
	// sequence order and renumbered 1..Rows at snapshot time, so every
	// WAL record of this generation has sequence numbers > Rows.
	Rows uint64 `json:"rows"`
	// Segments lists the snapshot files in sequence order.
	Segments []segmentInfo `json:"segments"`
}

// segmentInfo pins one segment's expected shape so recovery can tell a
// complete segment from a truncated one.
type segmentInfo struct {
	Name  string `json:"name"`
	Rows  int    `json:"rows"`
	Bytes int64  `json:"bytes"`
}

// manifestVersion is the current on-disk format.
const manifestVersion = 1

// segmentFile names generation gen's idx-th snapshot segment.
func segmentFile(gen uint64, idx int) string {
	return fmt.Sprintf("seg-%08d-%05d.jsonl", gen, idx)
}

// walFile names generation gen's log for one shard.
func walFile(gen uint64, shard int) string {
	return fmt.Sprintf("wal-%08d-%02d.log", gen, shard)
}

// readManifest loads the directory's commit record. A missing file is the
// empty dataset (generation 0); an unreadable or undecodable one is a
// real error — the manifest is written atomically, so damage to it is not
// a crash artifact recovery should paper over.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return &manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parse manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d unsupported (want %d)", m.Version, manifestVersion)
	}
	return &m, nil
}

// commitManifest atomically replaces the directory's manifest: temp file,
// fsync, rename over MANIFEST.json, fsync the directory so the rename
// itself is durable.
func commitManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("store: commit manifest: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it survive a
// power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// writeSegments dumps src as a new generation's snapshot segments, each
// at most segBytes of JSONL (a row never splits: segments rotate on the
// boundary after the limit is crossed). Every segment is fsynced before
// the caller commits the manifest that names it.
func writeSegments(dir string, gen uint64, src *Store, segBytes int64) ([]segmentInfo, uint64, error) {
	var (
		infos []segmentInfo
		f     *os.File
		bw    *bufio.Writer
		enc   *json.Encoder
		cur   segmentInfo
		rows  uint64
	)
	closeCurrent := func() error {
		if f == nil {
			return nil
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("store: flush segment %s: %w", cur.Name, err)
		}
		size, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			f.Close()
			return fmt.Errorf("store: size segment %s: %w", cur.Name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: sync segment %s: %w", cur.Name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("store: close segment %s: %w", cur.Name, err)
		}
		cur.Bytes = size
		infos = append(infos, cur)
		f, bw, enc = nil, nil, nil
		return nil
	}
	emit := func(o *Observation) error {
		if f != nil && cur.Bytes >= segBytes {
			if err := closeCurrent(); err != nil {
				return err
			}
		}
		if f == nil {
			cur = segmentInfo{Name: segmentFile(gen, len(infos))}
			var err error
			f, err = os.OpenFile(filepath.Join(dir, cur.Name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
			if err != nil {
				return fmt.Errorf("store: create segment %s: %w", cur.Name, err)
			}
			bw = bufio.NewWriter(&countingWriter{w: f, n: &cur.Bytes})
			enc = json.NewEncoder(bw)
		}
		rows++
		cur.Rows++
		return enc.Encode(o)
	}
	if err := src.dumpOrdered(emit); err != nil {
		if f != nil {
			f.Close()
		}
		return nil, 0, err
	}
	if err := closeCurrent(); err != nil {
		return nil, 0, err
	}
	return infos, rows, nil
}

// countingWriter tracks bytes written so segment rotation can trigger on
// size without re-stating the encoder's output.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	*cw.n += int64(n)
	return n, err
}

// loadSegment streams one snapshot segment into dst, tolerating a
// truncated tail: complete rows load, the first broken row ends the
// segment, and the shortfall against the manifest's expectation is
// returned as lost rows. A missing file loses the whole segment.
func loadSegment(dir string, info segmentInfo, dst *Store) (lost int, err error) {
	f, err := os.Open(filepath.Join(dir, info.Name))
	if errors.Is(err, fs.ErrNotExist) {
		return info.Rows, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open segment %s: %w", info.Name, err)
	}
	defer f.Close()

	dec := json.NewDecoder(bufio.NewReader(f))
	batch := make([]Observation, 0, readBatch)
	rows := 0
	for {
		var o Observation
		if err := dec.Decode(&o); err != nil {
			// EOF is the clean end; anything else is the torn tail of a
			// segment that lost its last write — keep what decoded.
			break
		}
		rows++
		batch = append(batch, o)
		if len(batch) == readBatch {
			dst.AddAll(batch)
			batch = batch[:0]
		}
	}
	dst.AddAll(batch)
	if rows < info.Rows {
		return info.Rows - rows, nil
	}
	return 0, nil
}
