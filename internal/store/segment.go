package store

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// A snapshot is the dataset at one instant, compacted out of the WAL
// into segments keyed by time bucket: each bucket's rows are written as
// JSON Lines (one {"seq","obs"} row per observation, in sequence order),
// split into bounded segments so no single file grows without limit and
// a truncated tail costs at most one segment's worth of rows. Cold
// buckets — every bucket except the newest one holding data — are
// gzip-compressed; the reader decompresses transparently. Rows carry
// their sequence numbers so recovery can re-merge buckets back into
// exact admission order, which keeps the recovered dataset byte-
// identical to what live readers saw.
//
// The manifest is the commit record: a snapshot exists only once
// MANIFEST.json names its buckets and segments, and the manifest is
// replaced atomically (write temp, fsync, rename, fsync directory), so
// a crash mid-compaction leaves the previous generation fully intact
// and the half-written files orphaned. Retention is recorded there too:
// a pruned bucket is simply absent from the committed manifest, and the
// cumulative prune totals ride along so restarts keep reporting what
// retention has dropped.

// manifestName is the data directory's commit record.
const manifestName = "MANIFEST.json"

// manifest describes one committed snapshot generation.
type manifest struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// Generation increments with every committed snapshot; segment and
	// WAL file names embed it, so stale files of other generations are
	// recognizable orphans.
	Generation uint64 `json:"generation"`
	// Rows is the snapshot's total observation count across buckets.
	Rows uint64 `json:"rows"`
	// MaxSeq is the sequence counter at commit time: every WAL record of
	// this generation carries sequence numbers > MaxSeq. (Retention can
	// leave holes below it, so MaxSeq can exceed Rows.)
	MaxSeq uint64 `json:"max_seq"`
	// BucketSeconds is the bucket width segments are keyed by.
	BucketSeconds int64 `json:"bucket_seconds"`
	// Buckets lists the live buckets, oldest first.
	Buckets []bucketInfo `json:"buckets"`
	// Pruned accumulates what retention has dropped over the directory's
	// lifetime — recovery reports it, stats surface it.
	Pruned PruneTotals `json:"pruned,omitempty"`
	// Epoch is the directory's replication identity: a random nonzero ID
	// minted on first writable open and carried across generations. A
	// follower pins the first epoch it streams from; a primary that was
	// replaced or reset mints a new one, which the follower refuses
	// rather than silently mixing two histories. Absent (0) on manifests
	// from before replication existed — bootstrapped on the next open.
	Epoch uint64 `json:"epoch,omitempty"`
}

// bucketInfo describes one live bucket's segments.
type bucketInfo struct {
	// Start is the bucket's inclusive start, unix seconds; the bucket
	// covers [Start, Start+BucketSeconds).
	Start int64 `json:"start"`
	// Rows and Bytes total the bucket's segments.
	Rows  int   `json:"rows"`
	Bytes int64 `json:"bytes"`
	// Compressed marks a cold (gzipped) bucket.
	Compressed bool `json:"compressed,omitempty"`
	// Segments lists the bucket's files in sequence order.
	Segments []segmentInfo `json:"segments"`
}

// segmentInfo pins one segment's expected shape so recovery can tell a
// complete segment from a truncated one.
type segmentInfo struct {
	Name  string `json:"name"`
	Rows  int    `json:"rows"`
	Bytes int64  `json:"bytes"`
}

// PruneTotals accumulates retention's work across the directory's life.
type PruneTotals struct {
	// Buckets, Rows and Bytes count what pruning dropped, cumulatively.
	Buckets uint64 `json:"buckets"`
	Rows    uint64 `json:"rows"`
	Bytes   uint64 `json:"bytes"`
}

// manifestVersion is the current on-disk format: 2 re-keyed segments by
// time bucket (v1 kept one flat segment list).
const manifestVersion = 2

// segmentFile names one snapshot segment: generation, bucket start,
// index within the bucket, with .gz marking a compressed cold bucket.
func segmentFile(gen uint64, bucket int64, idx int, compressed bool) string {
	name := fmt.Sprintf("seg-%08d-b%d-%05d.jsonl", gen, bucket, idx)
	if compressed {
		name += ".gz"
	}
	return name
}

// walFile names generation gen's log for one shard.
func walFile(gen uint64, shard int) string {
	return fmt.Sprintf("wal-%08d-%02d.log", gen, shard)
}

// readManifest loads the directory's commit record. A missing file is the
// empty dataset (generation 0); an unreadable or undecodable one is a
// real error — the manifest is written atomically, so damage to it is not
// a crash artifact recovery should paper over.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return &manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parse manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d unsupported (want %d)", m.Version, manifestVersion)
	}
	return &m, nil
}

// commitManifest atomically replaces the directory's manifest: temp file,
// fsync, rename over MANIFEST.json, fsync the directory so the rename
// itself is durable.
func commitManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("store: commit manifest: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it survive a
// power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// segRow is the on-disk row: the observation plus the sequence number
// it held when written, so recovery can interleave buckets back into
// admission order.
type segRow struct {
	Seq uint64      `json:"seq"`
	Obs Observation `json:"obs"`
}

// writeBucket dumps one bucket of src as generation gen's segments, each
// at most segBytes on disk (a row never splits: segments rotate on the
// boundary after the limit is crossed; for compressed buckets the limit
// applies to compressed bytes). Every segment is fsynced before the
// caller commits the manifest that names it. Files are created under
// their final names — an aborted pass leaves orphans of an uncommitted
// generation, which the post-commit sweep (or the next open) removes.
func writeBucket(dir string, gen uint64, src *Store, bucket int64, compressed bool, segBytes int64) (bucketInfo, error) {
	info := bucketInfo{Start: bucket, Compressed: compressed}
	var (
		f   *os.File
		gz  *gzip.Writer
		bw  *bufio.Writer
		enc *json.Encoder
		cur segmentInfo
	)
	closeCurrent := func() error {
		if f == nil {
			return nil
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("store: flush segment %s: %w", cur.Name, err)
		}
		if gz != nil {
			if err := gz.Close(); err != nil {
				f.Close()
				return fmt.Errorf("store: close gzip %s: %w", cur.Name, err)
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: sync segment %s: %w", cur.Name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("store: close segment %s: %w", cur.Name, err)
		}
		info.Bytes += cur.Bytes
		info.Segments = append(info.Segments, cur)
		f, gz, bw, enc = nil, nil, nil, nil
		return nil
	}
	emit := func(seq uint64, o *Observation) error {
		if f != nil && cur.Bytes >= segBytes {
			if err := closeCurrent(); err != nil {
				return err
			}
		}
		if f == nil {
			cur = segmentInfo{Name: segmentFile(gen, bucket, len(info.Segments), compressed)}
			var err error
			f, err = os.OpenFile(filepath.Join(dir, cur.Name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
			if err != nil {
				return fmt.Errorf("store: create segment %s: %w", cur.Name, err)
			}
			// cur.Bytes counts what lands in the file (compressed bytes
			// for cold buckets), which is what rotation and the disk
			// budget care about. The json.Encoder always feeds the bufio
			// layer; the gzip layer, when present, sits between it and
			// the counter.
			counted := io.Writer(&countingWriter{w: f, n: &cur.Bytes})
			if compressed {
				// BestSpeed: the dump already costs O(dataset); the cold
				// data is mostly-redundant JSON, which compresses well at
				// any level.
				gz, _ = gzip.NewWriterLevel(counted, gzip.BestSpeed)
				bw = bufio.NewWriter(gz)
			} else {
				bw = bufio.NewWriter(counted)
			}
			enc = json.NewEncoder(bw)
		}
		info.Rows++
		cur.Rows++
		return enc.Encode(segRow{Seq: seq, Obs: *o})
	}
	if err := src.dumpBucket(bucket, emit); err != nil {
		if f != nil {
			f.Close()
		}
		return bucketInfo{}, err
	}
	if err := closeCurrent(); err != nil {
		return bucketInfo{}, err
	}
	return info, nil
}

// countingWriter tracks bytes written so segment rotation can trigger on
// size without re-stating the encoder's output.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	*cw.n += int64(n)
	return n, err
}

// loadSegment streams one snapshot segment's (seq, observation) rows
// into dst, tolerating a truncated tail: complete rows load, the first
// broken row ends the segment, and the shortfall against the manifest's
// expectation is returned as lost rows. A missing file — or a compressed
// segment whose gzip header is gone — loses the whole segment. The .gz
// suffix picks the transparent-decompression path, so callers never care
// whether a bucket was cold when written.
func loadSegment(dir string, info segmentInfo, dst *[]seqObs) (lost int, err error) {
	f, err := os.Open(filepath.Join(dir, info.Name))
	if errors.Is(err, fs.ErrNotExist) {
		return info.Rows, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open segment %s: %w", info.Name, err)
	}
	defer f.Close()

	var r io.Reader = bufio.NewReader(f)
	if strings.HasSuffix(info.Name, ".gz") {
		gz, err := gzip.NewReader(r)
		if err != nil {
			// Header never made it to disk: the crash artifact form of a
			// compressed segment. Nothing is recoverable from it.
			return info.Rows, nil
		}
		defer gz.Close()
		r = gz
	}
	dec := json.NewDecoder(r)
	rows := 0
	for {
		var row segRow
		if err := dec.Decode(&row); err != nil {
			// EOF is the clean end; anything else is the torn tail of a
			// segment that lost its last write — keep what decoded.
			break
		}
		rows++
		*dst = append(*dst, seqObs{seq: row.Seq, obs: row.Obs})
	}
	if rows < info.Rows {
		return info.Rows - rows, nil
	}
	return 0, nil
}
