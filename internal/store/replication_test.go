package store

import (
	"bytes"
	"io"
	"iter"
	"math/rand"
	"testing"
)

// pump replicates primary's batches in (last, watermark] into follower
// through the public ScanBatches/ApplyAt pair and returns the new
// cursor — the in-process skeleton of what the HTTP stream does.
func pump(t *testing.T, primary interface {
	ScanBatches(after, upto uint64) iter.Seq2[[]uint64, []Observation]
	Watermark() uint64
}, follower *Store, last uint64) uint64 {
	t.Helper()
	upto := primary.Watermark()
	for seqs, obs := range primary.ScanBatches(last, upto) {
		if err := follower.ApplyAt(seqs, obs); err != nil {
			t.Fatalf("ApplyAt: %v", err)
		}
	}
	return upto
}

// addVariedBatches feeds obs to the store in deterministic, varied batch
// sizes (including single-row batches) and returns the batch sizes used.
func addVariedBatches(b Backend, obs []Observation, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	var sizes []int
	for i := 0; i < len(obs); {
		n := 1 + rng.Intn(40)
		if i+n > len(obs) {
			n = len(obs) - i
		}
		b.AddAll(obs[i : i+n])
		sizes = append(sizes, n)
		i += n
	}
	return sizes
}

func TestScanBatchesPreservesBatchBoundaries(t *testing.T) {
	primary := New()
	obs := seedObservations(7, 900)
	sizes := addVariedBatches(primary, obs, 7)

	var got []int
	prevEnd := uint64(0)
	for seqs, rows := range primary.ScanBatches(0, primary.Watermark()) {
		if len(seqs) != len(rows) {
			t.Fatalf("frame carries %d seqs for %d rows", len(seqs), len(rows))
		}
		if seqs[0] <= prevEnd {
			t.Fatalf("frame start %d does not advance past previous end %d", seqs[0], prevEnd)
		}
		prevEnd = seqs[len(seqs)-1]
		got = append(got, len(seqs))
	}
	if len(got) != len(sizes) {
		t.Fatalf("ScanBatches yielded %d batches, admitted %d", len(got), len(sizes))
	}
	for i := range got {
		if got[i] != sizes[i] {
			t.Fatalf("batch %d: %d rows, admitted %d", i, got[i], sizes[i])
		}
	}
}

func TestScanBatchesResumesMidStream(t *testing.T) {
	primary := New()
	addVariedBatches(primary, seedObservations(11, 600), 11)

	// Full pass, then a resumed pass cut at an arbitrary batch boundary:
	// both must replay the identical tail.
	var ends []uint64
	for seqs := range primary.ScanBatches(0, primary.Watermark()) {
		ends = append(ends, seqs[len(seqs)-1])
	}
	cut := ends[len(ends)/2]
	follower := New()
	for seqs, obs := range primary.ScanBatches(cut, primary.Watermark()) {
		if seqs[0] <= cut {
			t.Fatalf("resumed stream replayed sequence %d at or below the cursor %d", seqs[0], cut)
		}
		if err := follower.ApplyAt(seqs, obs); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := follower.Watermark(), primary.Watermark(); got != want {
		t.Fatalf("resumed follower watermark = %d, want %d", got, want)
	}
}

func TestApplyAtReplicatesByteIdentical(t *testing.T) {
	primary := New()
	follower := New()
	obs := seedObservations(3, 1200)

	// Replicate incrementally, pumping every few admitted batches so the
	// stream is exercised mid-flight, not only once at the end.
	var cursor uint64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < len(obs); {
		n := 1 + rng.Intn(60)
		if i+n > len(obs) {
			n = len(obs) - i
		}
		primary.AddAll(obs[i : i+n])
		i += n
		if rng.Intn(3) == 0 {
			cursor = pump(t, primary, follower, cursor)
		}
	}
	cursor = pump(t, primary, follower, cursor)

	if got, want := follower.Watermark(), primary.Watermark(); got != want {
		t.Fatalf("follower watermark = %d, want %d", got, want)
	}
	if cursor != primary.Watermark() {
		t.Fatalf("cursor = %d, want %d", cursor, primary.Watermark())
	}
	if !bytes.Equal(jsonlBytes(t, follower), jsonlBytes(t, primary)) {
		t.Fatal("caught-up follower JSONL differs from the primary")
	}
	if got, want := follower.LenOK(), primary.LenOK(); got != want {
		t.Fatalf("follower LenOK = %d, want %d", got, want)
	}
	// The follower must itself be a valid replication source (chained
	// followers stream from it with the same frames).
	second := New()
	pump(t, follower, second, 0)
	if !bytes.Equal(jsonlBytes(t, second), jsonlBytes(t, primary)) {
		t.Fatal("chained follower JSONL differs from the primary")
	}
}

func TestApplyAtRejectsBadSequences(t *testing.T) {
	s := New()
	s.AddAll(seedObservations(5, 10))
	o := seedObservations(6, 3)

	if err := s.ApplyAt([]uint64{5, 6, 7}, o); err == nil {
		t.Fatal("ApplyAt accepted sequences at or below the counter")
	}
	if err := s.ApplyAt([]uint64{11, 13, 12}, o); err == nil {
		t.Fatal("ApplyAt accepted non-increasing sequences")
	}
	if err := s.ApplyAt([]uint64{11, 12}, o); err == nil {
		t.Fatal("ApplyAt accepted a seq/observation count mismatch")
	}
	if err := s.ApplyAt(nil, nil); err != nil {
		t.Fatalf("empty ApplyAt: %v", err)
	}
	// Gaps above the counter are legal (retention holes on the primary).
	if err := s.ApplyAt([]uint64{20, 30, 40}, o); err != nil {
		t.Fatalf("gapped ApplyAt: %v", err)
	}
	if got := s.Watermark(); got != 40 {
		t.Fatalf("watermark after gapped apply = %d, want 40", got)
	}
}

func TestWALFrameCodecRoundTrip(t *testing.T) {
	obs := seedObservations(9, 120)
	frames := []WALFrame{
		{Seqs: []uint64{1, 2, 3}, Obs: obs[:3], Watermark: 3},
		{Watermark: 3}, // heartbeat
		{Seqs: []uint64{4}, Obs: obs[3:4], Watermark: 90},
		{Seqs: seqRange(5, len(obs)-4), Obs: obs[4:], Watermark: uint64(len(obs))},
	}
	var buf []byte
	var err error
	for _, f := range frames {
		if buf, err = EncodeWALFrame(buf, f); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewWALFrameReader(bytes.NewReader(buf))
	for i, want := range frames {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Watermark != want.Watermark || len(got.Seqs) != len(want.Seqs) || len(got.Obs) != len(want.Obs) {
			t.Fatalf("frame %d: got %d seqs wm %d, want %d seqs wm %d",
				i, len(got.Seqs), got.Watermark, len(want.Seqs), want.Watermark)
		}
		for j := range got.Seqs {
			if got.Seqs[j] != want.Seqs[j] {
				t.Fatalf("frame %d seq %d: %d != %d", i, j, got.Seqs[j], want.Seqs[j])
			}
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func seqRange(start uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i)
	}
	return out
}

func TestWALFrameReaderTornStream(t *testing.T) {
	full, err := EncodeWALFrame(nil, WALFrame{Seqs: []uint64{1, 2}, Obs: seedObservations(2, 2), Watermark: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, walHeaderSize - 1, walHeaderSize + 1, len(full) - 1} {
		fr := NewWALFrameReader(bytes.NewReader(full[:cut]))
		if _, err := fr.Next(); err == nil || err == io.EOF {
			t.Fatalf("cut at %d: err = %v, want a torn-frame error", cut, err)
		}
	}
	// A flipped payload byte must fail the checksum, not decode.
	corrupt := append([]byte(nil), full...)
	corrupt[walHeaderSize+2] ^= 0x40
	if _, err := NewWALFrameReader(bytes.NewReader(corrupt)).Next(); err == nil || err == io.EOF {
		t.Fatalf("corrupt payload: err = %v, want a torn-frame error", err)
	}
}

func TestRecoveryPreservesSequences(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	obs := seedObservations(13, 700)
	addVariedBatches(d, obs, 13)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	wantSeqs := scanSeqs(d)
	wantWM := d.Watermark()
	epoch := d.Epoch()
	if epoch == 0 {
		t.Fatal("durable store minted no replication epoch")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	defer d2.Close()
	if got := d2.Epoch(); got != epoch {
		t.Fatalf("epoch changed across reopen: %d != %d", got, epoch)
	}
	if got := d2.Watermark(); got != wantWM {
		t.Fatalf("recovered watermark = %d, want %d", got, wantWM)
	}
	gotSeqs := scanSeqs(d2)
	if len(gotSeqs) != len(wantSeqs) {
		t.Fatalf("recovered %d rows, want %d", len(gotSeqs), len(wantSeqs))
	}
	for i := range gotSeqs {
		if gotSeqs[i] != wantSeqs[i] {
			t.Fatalf("row %d recovered under sequence %d, originally %d", i, gotSeqs[i], wantSeqs[i])
		}
	}
	// A follower that had caught up before the restart resumes cleanly:
	// nothing to replay, and new writes stream from the old cursor.
	follower := New()
	cursor := pump(t, d2, follower, 0)
	d2.AddAll(seedObservations(14, 50))
	pump(t, d2, follower, cursor)
	if got, want := follower.Len(), d2.Len(); got != want {
		t.Fatalf("follower has %d rows after post-restart writes, want %d", got, want)
	}
}

func scanSeqs(r Reader) []uint64 {
	var out []uint64
	for seq := range r.ScanRange(Query{Round: -1}, 0, ^uint64(0)) {
		out = append(out, seq)
	}
	return out
}

func TestScanBatchesSkipsPrunedBatches(t *testing.T) {
	// Retention leaves sequence holes: a store rebuilt without old
	// buckets still streams its surviving batches, and a follower applies
	// them across the gap.
	s := New()
	obs := seedObservations(21, 400)
	addVariedBatches(s, obs, 21)
	// Drop roughly the older half of the dataset by bucket.
	counts := s.bucketRows()
	active, _ := s.activeBucket()
	victims := make(map[int64]struct{})
	dropped := 0
	for b, n := range counts {
		if b != active && dropped+n <= len(obs)/2 {
			victims[b] = struct{}{}
			dropped += n
		}
	}
	if len(victims) == 0 {
		t.Fatal("test needs at least one prunable bucket")
	}
	pruned, _ := s.rebuildWithout(victims)

	follower := New()
	rows := 0
	for seqs, o := range pruned.ScanBatches(0, pruned.Watermark()) {
		rows += len(seqs)
		if err := follower.ApplyAt(seqs, o); err != nil {
			t.Fatal(err)
		}
	}
	if rows != pruned.Len() {
		t.Fatalf("streamed %d rows, pruned store holds %d", rows, pruned.Len())
	}
	if !bytes.Equal(jsonlBytes(t, follower), jsonlBytes(t, pruned)) {
		t.Fatal("follower of a pruned primary differs")
	}
}
