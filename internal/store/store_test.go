package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func obs(domain, sku, vp string, units int64, round int, src string, ok bool) Observation {
	return Observation{
		Domain: domain, SKU: sku, URL: "http://" + domain + "/product/" + sku,
		VP: vp, VPLabel: vp, Country: "US", City: "Boston",
		PriceUnits: units, Currency: "USD",
		Time:  time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, round),
		Round: round, Source: src, OK: ok,
	}
}

func TestAddFilterAndLen(t *testing.T) {
	runBackends(t, func(t *testing.T, newBackend newBackendFunc) {
		s := newBackend(t)
		s.Add(obs("a.com", "A-1", "us-bos", 100, 0, SourceCrawl, true))
		s.Add(obs("a.com", "A-1", "fi-tam", 120, 0, SourceCrawl, true))
		s.Add(obs("a.com", "A-2", "us-bos", 200, 1, SourceCrawl, false))
		s.Add(obs("b.com", "B-1", "us-bos", 300, -1, SourceCrowd, true))

		if s.Len() != 4 || s.LenOK() != 3 {
			t.Fatalf("Len=%d LenOK=%d", s.Len(), s.LenOK())
		}
		if got := len(s.Filter(Query{Domain: "a.com", Round: -1})); got != 3 {
			t.Fatalf("domain filter = %d", got)
		}
		if got := len(s.Filter(Query{Domain: "a.com", Round: 0})); got != 2 {
			t.Fatalf("round filter = %d", got)
		}
		if got := len(s.Filter(Query{Source: SourceCrowd, Round: -1})); got != 1 {
			t.Fatalf("source filter = %d", got)
		}
		if got := len(s.Filter(Query{OnlyOK: true, Round: -1})); got != 3 {
			t.Fatalf("ok filter = %d", got)
		}
		if got := len(s.Filter(Query{VP: "fi-tam", Round: -1})); got != 1 {
			t.Fatalf("vp filter = %d", got)
		}
		if got := len(s.Filter(Query{SKU: "A-2", Round: -1})); got != 1 {
			t.Fatalf("sku filter = %d", got)
		}
	})
}

func TestDomainsAndProducts(t *testing.T) {
	runBackends(t, func(t *testing.T, newBackend newBackendFunc) {
		s := newBackend(t)
		s.Add(obs("b.com", "B-2", "x", 1, -1, SourceCrawl, true))
		s.Add(obs("a.com", "A-1", "x", 1, -1, SourceCrawl, true))
		s.Add(obs("b.com", "B-1", "x", 1, -1, SourceCrawl, true))
		s.Add(obs("b.com", "B-1", "y", 2, -1, SourceCrawl, true))

		if got := s.Domains(); len(got) != 2 || got[0] != "a.com" || got[1] != "b.com" {
			t.Fatalf("Domains = %v", got)
		}
		ps := s.Products("b.com")
		if len(ps) != 2 || ps[0].SKU != "B-1" || ps[1].SKU != "B-2" {
			t.Fatalf("Products = %v", ps)
		}
	})
}

func TestGroupByProduct(t *testing.T) {
	runBackends(t, func(t *testing.T, newBackend newBackendFunc) {
		s := newBackend(t)
		for round := 0; round < 3; round++ {
			s.Add(obs("a.com", "A-1", "us-bos", 100, round, SourceCrawl, true))
			s.Add(obs("a.com", "A-1", "fi-tam", 130, round, SourceCrawl, true))
		}
		s.Add(obs("a.com", "A-1", "user", 99, -1, SourceCrowd, true))
		groups := s.GroupByProduct(SourceCrawl)
		g := groups[Key{Domain: "a.com", SKU: "A-1"}]
		if len(g) != 6 {
			t.Fatalf("group size = %d, want 6 (crowd obs excluded)", len(g))
		}
	})
}

func TestAmountReconstruction(t *testing.T) {
	o := obs("a.com", "A-1", "x", 12345, -1, SourceCrawl, true)
	a, ok := o.Amount()
	if !ok || a.Units != 12345 || a.Currency.Code != "USD" {
		t.Fatalf("Amount = %v %v", a, ok)
	}
	o.Currency = "XXX"
	if _, ok := o.Amount(); ok {
		t.Fatal("unknown currency reconstructed")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	runBackends(t, func(t *testing.T, newBackend newBackendFunc) {
		s := newBackend(t)
		for i := 0; i < 50; i++ {
			o := obs("a.com", fmt.Sprintf("A-%d", i), "us-bos", int64(100+i), i%7, SourceCrawl, i%5 != 0)
			if i%5 == 0 {
				o.Err = "extract: no price found"
			}
			s.Add(o)
		}
		var buf bytes.Buffer
		if err := s.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != s.Len() || back.LenOK() != s.LenOK() {
			t.Fatalf("round trip: Len %d->%d OK %d->%d", s.Len(), back.Len(), s.LenOK(), back.LenOK())
		}
		a, b := s.All(), back.All()
		for i := range a {
			if !a[i].Time.Equal(b[i].Time) {
				t.Fatalf("time drift at %d", i)
			}
			a[i].Time, b[i].Time = time.Time{}, time.Time{}
			if a[i] != b[i] {
				t.Fatalf("observation %d mismatch:\n%+v\n%+v", i, a[i], b[i])
			}
		}
	})
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{not json}\n")); err == nil {
		t.Fatal("bad JSONL accepted")
	}
	s, err := ReadJSONL(bytes.NewBuffer(nil))
	if err != nil || s.Len() != 0 {
		t.Fatal("empty input should give empty store")
	}
}

func TestConcurrentAdd(t *testing.T) {
	runBackends(t, func(t *testing.T, newBackend newBackendFunc) {
		s := newBackend(t)
		var wg sync.WaitGroup
		for i := 0; i < 20; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					s.Add(obs("c.com", fmt.Sprintf("C-%d-%d", i, j), "x", 1, -1, SourceCrawl, true))
				}
			}(i)
		}
		wg.Wait()
		if s.Len() != 1000 {
			t.Fatalf("Len = %d", s.Len())
		}
	})
}
