package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// crash simulates process death: every descriptor closes (the kernel
// does exactly this on kill -9) without any flush, sync or checkpoint —
// written bytes stay, the flock releases, nothing graceful happens.
// Abandoning the struct without this is NOT a faithful crash in-process:
// the flock stays held (or releases at the GC's whim via finalizers).
func (d *Durable) crash() {
	if d.stopSync != nil {
		d.stopOnce.Do(func() {
			close(d.stopSync)
			<-d.syncDone
		})
	}
	d.writeGate.Lock()
	defer d.writeGate.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	for si := range d.wals {
		d.wals[si].f.Close()
	}
	if d.lock != nil {
		d.lock.Close()
	}
}

// openDurable opens a writable durable store and fails the test on error.
func openDurable(t *testing.T, dir string, opts DurableOptions) (*Durable, RecoveryReport) {
	t.Helper()
	d, rep, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatalf("open durable %s: %v", dir, err)
	}
	return d, rep
}

// jsonlBytes serializes a backend and fails the test on error.
func jsonlBytes(t *testing.T, r Reader) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// walPaths lists the data directory's non-empty log files.
func walPaths(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "wal-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > 0 {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestDurableCrashRecovery simulates the kill -9 case: a store that is
// never closed (its WAL simply stops mid-life) must reopen with every
// completed batch intact and in admission order.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	obs := seedObservations(3, 2000)
	oracle := New()
	for i := 0; i < len(obs); i += 14 {
		end := min(i+14, len(obs))
		d.AddAll(obs[i:end])
		oracle.AddAll(obs[i:end])
	}
	want := jsonlBytes(t, oracle)
	// The process "dies" here: descriptors close un-flushed, the written
	// bytes stay — exactly what kill -9 leaves behind (fsync policy only
	// matters across power loss).
	d.crash()
	back, rep, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(obs) || rep.Rows() != len(obs) {
		t.Fatalf("recovered %d rows (report %d), want %d", back.Len(), rep.Rows(), len(obs))
	}
	if rep.WALBytesDiscarded != 0 || rep.SegmentRowsLost != 0 {
		t.Fatalf("clean crash reported losses: %+v", rep)
	}
	if !bytes.Equal(jsonlBytes(t, back), want) {
		t.Fatal("recovered dataset is not byte-identical to the admission order")
	}
	// A writable reopen must see the same dataset and keep accepting.
	d2, rep2 := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	if rep2.Rows() != len(obs) {
		t.Fatalf("writable reopen recovered %d rows, want %d", rep2.Rows(), len(obs))
	}
	if !bytes.Equal(jsonlBytes(t, d2), want) {
		t.Fatal("writable reopen dataset diverged")
	}
	d2.Add(obs[0])
	if d2.Len() != len(obs)+1 {
		t.Fatalf("post-recovery write lost: Len = %d", d2.Len())
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableTornWALTail pins the torn-write case: a crash mid-append
// leaves a half-written record (or trailing garbage) at a log's end;
// recovery must keep every complete record and discard only the tail.
func TestDurableTornWALTail(t *testing.T) {
	for _, tear := range []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"garbage-appended", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
		{"record-truncated", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			// Chop into the final record's payload: the frame header
			// promises more bytes than the file holds.
			if err := os.Truncate(path, info.Size()-11); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
			// One domain: every record lands in one shard's log, so the
			// tear provably hits the same log the data lives in.
			var batches [][]Observation
			for b := 0; b < 20; b++ {
				batch := make([]Observation, 5)
				for i := range batch {
					batch[i] = obs("torn.example", fmt.Sprintf("S-%d-%d", b, i), "us-bos",
						int64(b*100+i), -1, SourceCrowd, true)
				}
				batches = append(batches, batch)
				d.AddAll(batch)
			}
			logs := walPaths(t, dir)
			if len(logs) != 1 {
				t.Fatalf("expected 1 non-empty log, found %d", len(logs))
			}
			d.crash()
			tear.tear(t, logs[0])

			back, rep, err := OpenReadOnly(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rep.WALBytesDiscarded == 0 {
				t.Fatalf("tear not detected: %+v", rep)
			}
			// Complete records survive whole; the torn record is gone
			// entirely — batch atomicity, no partial batches.
			if back.Len()%5 != 0 {
				t.Fatalf("partial batch recovered: %d rows", back.Len())
			}
			wantBatches := back.Len() / 5
			if tear.name == "garbage-appended" && wantBatches != 20 {
				t.Fatalf("appended garbage cost real records: %d/20 batches", wantBatches)
			}
			if tear.name == "record-truncated" && wantBatches != 19 {
				t.Fatalf("truncation must cost exactly the last record: %d/20 batches", wantBatches)
			}
			rows := back.All()
			for i, o := range rows {
				want := batches[i/5][i%5]
				o.Time, want.Time = want.Time, o.Time // JSONL time equality checked elsewhere
				if o != want {
					t.Fatalf("row %d diverged after recovery", i)
				}
			}
			// A writable open heals the directory: the torn tail is
			// compacted away and a further reopen reports no loss.
			d2, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
			if err := d2.Close(); err != nil {
				t.Fatal(err)
			}
			_, rep3, err := OpenReadOnly(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rep3.WALBytesDiscarded != 0 || rep3.Rows() != back.Len() {
				t.Fatalf("healed directory still reports damage: %+v", rep3)
			}
		})
	}
}

// TestDurableTruncatedSegment pins snapshot damage: a segment that lost
// its tail costs exactly the unrecoverable rows of that segment — the
// rest of the snapshot and the whole log tail still load.
func TestDurableTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a multi-segment snapshot; one huge bucket keeps
	// every segment in the (uncompressed) active bucket, so truncation
	// hits plain JSONL mid-row. Compressed-segment damage has its own
	// test in bucket_test.go.
	opts := DurableOptions{Fsync: FsyncNever, SegmentBytes: 4096, CompactWALBytes: -1,
		BucketDuration: 1000 * 24 * time.Hour}
	d, _ := openDurable(t, dir, opts)
	obs := seedObservations(11, 600)
	d.AddAll(obs)
	if err := d.Compact(); err != nil { // snapshot the 600 rows
		t.Fatal(err)
	}
	extra := seedObservations(13, 40) // live log tail on top of the snapshot
	d.AddAll(extra)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Buckets) != 1 {
		t.Fatalf("want one bucket, got %d", len(man.Buckets))
	}
	segs := man.Buckets[0].Segments
	if len(segs) < 3 {
		t.Fatalf("want a multi-segment snapshot, got %d segments", len(segs))
	}
	// Truncate the middle segment mid-row.
	victim := segs[1]
	if err := os.Truncate(filepath.Join(dir, victim.Name), victim.Bytes/2); err != nil {
		t.Fatal(err)
	}

	back, rep, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SegmentRowsLost == 0 || rep.SegmentRowsLost >= victim.Rows {
		t.Fatalf("half-truncated segment must lose some but not all of its %d rows: %+v", victim.Rows, rep)
	}
	wantRows := 600 + len(extra) - rep.SegmentRowsLost
	if back.Len() != wantRows || rep.Rows() != wantRows {
		t.Fatalf("recovered %d rows (report %d), want %d", back.Len(), rep.Rows(), wantRows)
	}
	// The log tail must survive segment damage untouched.
	if rep.WALRows != len(extra) {
		t.Fatalf("wal tail lost: replayed %d rows, want %d", rep.WALRows, len(extra))
	}
	// Surviving rows keep their order: the recovered store is the oracle
	// minus the lost span.
	oracle := New()
	oracle.AddAll(obs)
	oracle.AddAll(extra)
	all, ref := back.All(), oracle.All()
	j := 0
	matched := 0
	for i := range all {
		for j < len(ref) {
			a, b := all[i], ref[j]
			a.Time, b.Time = b.Time, a.Time
			j++
			if a == b {
				matched++
				break
			}
		}
	}
	if matched != len(all) {
		t.Fatalf("recovered rows are not an ordered subsequence of the oracle: %d/%d", matched, len(all))
	}
}

// TestDurableCompactionCycle walks the generation lifecycle: snapshots
// commit, logs empty, stale generations sweep away, and the dataset's
// bytes never change across any of it.
func TestDurableCompactionCycle(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever, CompactWALBytes: -1})
	obs := seedObservations(5, 1500)
	var want []byte
	for i := 0; i < len(obs); i += 500 {
		d.AddAll(obs[i : i+500])
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
		stats := d.Stats()
		if stats.WALBytes != 0 || stats.SnapshotRows != uint64(i+500) {
			t.Fatalf("after compaction %d: %+v", i/500, stats)
		}
	}
	want = jsonlBytes(t, d)
	stats := d.Stats()
	// A fresh dir opens at generation 0 (nothing to commit yet); the
	// three compactions each advance it.
	if stats.Generation != 3 {
		t.Fatalf("generation = %d, want 3", stats.Generation)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Exactly one generation's files remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		n := e.Name()
		if (strings.HasPrefix(n, "seg-") || strings.HasPrefix(n, "wal-")) &&
			!strings.Contains(n, fmt.Sprintf("-%08d-", stats.Generation)) {
			t.Fatalf("stale generation file survived sweep: %s", n)
		}
	}
	back, rep, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotRows != len(obs) || rep.WALRows != 0 {
		t.Fatalf("post-compaction recovery: %+v", rep)
	}
	if !bytes.Equal(jsonlBytes(t, back), want) {
		t.Fatal("dataset bytes changed across compactions")
	}
}

// TestDurableCleanReopenSkipsRewrite pins the clean-restart fast path: a
// reopen that recovered nothing from the logs reuses the committed
// generation instead of rewriting the whole dataset — a multi-GB clean
// restart must not pay an O(dataset) boot tax.
func TestDurableCleanReopenSkipsRewrite(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever, CompactWALBytes: -1})
	d.AddAll(seedObservations(19, 400))
	if err := d.Compact(); err != nil { // commit generation 1, empty logs
		t.Fatal(err)
	}
	want := jsonlBytes(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Buckets) == 0 || len(man.Buckets[0].Segments) == 0 {
		t.Fatalf("committed manifest names no segments: %+v", man)
	}
	seg := filepath.Join(dir, man.Buckets[0].Segments[0].Name)
	before, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	d2, rep := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	if rep.SnapshotRows != 400 || rep.WALRows != 0 {
		t.Fatalf("clean reopen recovery: %+v", rep)
	}
	if got := d2.Stats().Generation; got != 1 {
		t.Fatalf("clean reopen advanced the generation to %d", got)
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("clean reopen rewrote the committed segment")
	}
	if !bytes.Equal(jsonlBytes(t, d2), want) {
		t.Fatal("clean reopen changed the dataset")
	}
	// And the reused generation still accepts and recovers new writes.
	d2.AddAll(seedObservations(23, 50))
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	back, rep2, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 450 || rep2.WALRows != 50 {
		t.Fatalf("post-reuse writes lost: %d rows (report %+v)", back.Len(), rep2)
	}
}

// TestDurableAutoCompaction asserts the WAL-size trigger fires on its
// own and costs no data.
func TestDurableAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever, CompactWALBytes: 16 << 10})
	obs := seedObservations(17, 3000)
	for i := 0; i < len(obs); i += 100 {
		d.AddAll(obs[i : i+100])
	}
	// The trigger runs on its own goroutine; give it its window before
	// closing (Close waits out an in-flight pass via the gate).
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Generation < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Generation < 1 {
		t.Fatalf("auto compaction never fired: %+v", d.Stats())
	}
	back, rep, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(obs) {
		t.Fatalf("recovered %d rows, want %d (report %+v)", back.Len(), len(obs), rep)
	}
}

// TestDurableFsyncPolicies exercises each flush policy end to end.
func TestDurableFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			d, _ := openDurable(t, dir, DurableOptions{Fsync: p, SyncInterval: time.Millisecond})
			d.AddAll(seedObservations(int64(p)+1, 300))
			if p == FsyncAlways {
				if got := d.Stats().SyncedSeq; got != 300 {
					t.Fatalf("FsyncAlways watermark = %d, want 300", got)
				}
			}
			if err := d.Sync(); err != nil {
				t.Fatal(err)
			}
			if got := d.Stats().SyncedSeq; got != 300 {
				t.Fatalf("post-Sync watermark = %d, want 300", got)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			back, _, err := OpenReadOnly(dir)
			if err != nil {
				t.Fatal(err)
			}
			if back.Len() != 300 {
				t.Fatalf("recovered %d rows, want 300", back.Len())
			}
		})
	}
}

// TestDurableWriteAfterClose pins the failure mode: no panic, no silent
// success — a sticky error.
func TestDurableWriteAfterClose(t *testing.T) {
	d, _ := openDurable(t, t.TempDir(), DurableOptions{Fsync: FsyncNever})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d.Add(obs("a.com", "A-1", "x", 1, -1, SourceCrawl, true))
	if d.Err() == nil {
		t.Fatal("write after close went unrecorded")
	}
	if d.Len() != 0 {
		t.Fatalf("write after close landed: Len = %d", d.Len())
	}
}

// TestDurableConcurrentWritersRecover pins that batches logged from
// concurrent writers re-merge into exactly the order live readers saw.
func TestDurableConcurrentWritersRecover(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			domain := fmt.Sprintf("writer%d.example", w)
			for b := 0; b < 30; b++ {
				batch := make([]Observation, 7)
				for i := range batch {
					batch[i] = obs(domain, fmt.Sprintf("S-%d", b), "vp", int64(b*10+i), -1, SourceCrowd, true)
				}
				d.AddAll(batch)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	want := jsonlBytes(t, d) // the order live readers observed
	d.crash()
	back, rep, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 8*30*7 || rep.Rows() != back.Len() {
		t.Fatalf("recovered %d rows, want %d", back.Len(), 8*30*7)
	}
	if !bytes.Equal(jsonlBytes(t, back), want) {
		t.Fatal("concurrent batches recovered out of admission order")
	}
	for w := 0; w < 8; w++ {
		q := Query{Domain: fmt.Sprintf("writer%d.example", w), Round: -1}
		if !reflect.DeepEqual(back.Filter(q), d.Filter(q)) {
			t.Fatalf("per-domain rows diverged for writer %d", w)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenReadOnlyRequiresDir pins the read-only contract: it inspects
// existing data, it does not invent directories.
func TestOpenReadOnlyRequiresDir(t *testing.T) {
	if _, _, err := OpenReadOnly(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir opened read-only")
	}
}

// TestDurableRejectsCorruptManifest pins that manifest damage is fatal,
// not papered over: the manifest is written atomically, so a broken one
// means something other than a crash happened.
func TestDurableRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	d, _ := openDurable(t, dir, DurableOptions{Fsync: FsyncNever})
	d.AddAll(seedObservations(1, 10))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenReadOnly(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if _, _, err := OpenDurable(dir, DurableOptions{}); err == nil {
		t.Fatal("corrupt manifest accepted by writable open")
	}
}
