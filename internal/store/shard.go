package store

import "sync"

// shardBits fixes the shard count. 16 shards keep lock contention
// negligible for a 14-way vantage-point fan-out plus crawler parallelism
// while costing nothing on small datasets.
const (
	shardBits = 4
	numShards = 1 << shardBits
)

// shardIdx maps a domain to its shard (FNV-1a over the domain bytes).
// Everything observed at one retailer lives in one shard, so
// domain-scoped queries touch a single lock.
func shardIdx(domain string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(domain); i++ {
		h ^= uint32(domain[i])
		h *= 16777619
	}
	return h & (numShards - 1)
}

// keyGroup is the primary storage unit: one product's observations,
// contiguous in memory and in append order. Keeping the dataset grouped
// by key at ingest is what makes GroupByProduct — the analysis layer's
// dominant query — an index walk over cache-local runs instead of a
// full-dataset scan-and-partition. All slices are append-only; elements
// are never mutated once published, so a slice header captured under the
// shard's read lock stays valid forever.
type keyGroup struct {
	// obs and seqs hold the group's observations and their global
	// sequence numbers, in append order.
	obs  []Observation
	seqs []uint64
	// bySource posts group-local observation positions per campaign
	// source, for source-restricted grouping.
	bySource map[string][]int32
}

// gref addresses one observation: the group it lives in plus its
// position there. Order lists of grefs give the shard its insertion
// sequence without storing the dataset twice.
type gref struct {
	g   *keyGroup
	pos int32
}

// obs returns the referenced observation. Only call with the shard lock
// held (reading g.obs's live header), or via headers captured under it.
func (r gref) obs() *Observation { return &r.g.obs[r.pos] }

// seq returns the referenced observation's global sequence number.
func (r gref) seq() uint64 { return r.g.seqs[r.pos] }

// domainIndex is the posting state of one domain.
type domainIndex struct {
	// order lists the domain's observations in append order.
	order []gref
	// skus is the domain's distinct product set.
	skus map[string]struct{}
}

// shard is one independently-locked partition of the store.
type shard struct {
	mu sync.RWMutex
	// ok counts successful extractions.
	ok int
	// groups is the primary storage, keyed by product.
	groups map[Key]*keyGroup
	// order lists every observation in append order — the shard's
	// contribution to global insertion-order scans and serialization.
	order []gref
	// byDomain indexes each domain's observations and SKU set — the
	// Filter{Domain} and Products fast paths.
	byDomain map[string]*domainIndex
	// bySource lists observations per campaign source in append order —
	// the Filter{Source} fast path.
	bySource map[string][]gref
	// okBySource counts successful extractions per campaign source.
	okBySource map[string]int
	// byVP counts observations per vantage point.
	byVP map[string]int
	// byTenant and okByTenant count observations (total / extraction-OK)
	// per contributing tenant; anonymous observations are not counted.
	byTenant   map[string]int
	okByTenant map[string]int
	// byBucket lists observations per time bucket (keyed by bucket
	// start, unix seconds) in append order — the unit durable segments,
	// retention and time-range pushdown partition by.
	byBucket map[int64][]gref
}

// init readies the shard's maps.
func (sh *shard) init() {
	sh.groups = make(map[Key]*keyGroup)
	sh.byDomain = make(map[string]*domainIndex)
	sh.bySource = make(map[string][]gref)
	sh.okBySource = make(map[string]int)
	sh.byVP = make(map[string]int)
	sh.byTenant = make(map[string]int)
	sh.okByTenant = make(map[string]int)
	sh.byBucket = make(map[int64][]gref)
}

// add appends one observation and updates every index; bucket is the
// observation's time bucket start. Caller holds mu. Groups address
// observations with int32 positions; at ~2 billion observations per
// product the store must grow a wider posting type.
func (sh *shard) add(o Observation, seq uint64, bucket int64) {
	k := Key{Domain: o.Domain, SKU: o.SKU}
	g := sh.groups[k]
	if g == nil {
		g = &keyGroup{bySource: make(map[string][]int32)}
		sh.groups[k] = g
	}
	pos := int32(len(g.obs))
	g.obs = append(g.obs, o)
	g.seqs = append(g.seqs, seq)
	g.bySource[o.Source] = append(g.bySource[o.Source], pos)

	r := gref{g: g, pos: pos}
	sh.order = append(sh.order, r)

	di := sh.byDomain[o.Domain]
	if di == nil {
		di = &domainIndex{skus: make(map[string]struct{})}
		sh.byDomain[o.Domain] = di
	}
	di.order = append(di.order, r)
	di.skus[o.SKU] = struct{}{}

	sh.bySource[o.Source] = append(sh.bySource[o.Source], r)
	sh.byBucket[bucket] = append(sh.byBucket[bucket], r)
	sh.byVP[o.VP]++
	if o.Tenant != "" {
		sh.byTenant[o.Tenant]++
	}
	if o.OK {
		sh.ok++
		sh.okBySource[o.Source]++
		if o.Tenant != "" {
			sh.okByTenant[o.Tenant]++
		}
	}
}
