//go:build !unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockDataDir on platforms without flock creates the LOCK file but takes
// no lock: single-writer discipline is the operator's responsibility
// there. Every supported deployment (CI and production are Linux) gets
// the real advisory lock from lockfile_unix.go.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock file: %w", err)
	}
	return f, nil
}

// dataDirBusy cannot be answered without flock; report not-busy.
func dataDirBusy(string) bool { return false }
