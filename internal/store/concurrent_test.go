package store

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAddAndQuery hammers the store with parallel writers
// (mimicking the backend's 14-way check fan-out and concurrent crawler
// product groups) while readers stream every query surface. Run under
// `go test -race`; the assertions also pin that no observation is lost
// or duplicated.
func TestConcurrentAddAndQuery(t *testing.T) {
	runBackends(t, testConcurrentAddAndQuery)
}

func testConcurrentAddAndQuery(t *testing.T, newBackend newBackendFunc) {
	st := newBackend(t)
	const (
		writers   = 8
		batches   = 40
		batchSize = 14
	)
	day := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			domain := fmt.Sprintf("shard%d.example", w)
			for b := 0; b < batches; b++ {
				batch := make([]Observation, batchSize)
				for i := range batch {
					batch[i] = Observation{
						Domain: domain, SKU: fmt.Sprintf("S-%d", b%5),
						VP: fmt.Sprintf("vp-%d", i), PriceUnits: int64(b*100 + i),
						Currency: "USD", Time: day, Round: b % 7,
						Source: SourceCrawl, OK: i%7 != 0,
					}
				}
				if b%2 == 0 {
					st.AddAll(batch)
				} else {
					for _, o := range batch {
						st.Add(o)
					}
				}
			}
		}(w)
	}

	// Readers race the writers across every query surface.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r {
				case 0:
					st.Filter(Query{Domain: "shard3.example", Round: -1, OnlyOK: true})
					st.Len()
					st.LenOK()
				case 1:
					for range st.Scan(Query{Source: SourceCrawl, Round: 2}) {
					}
					st.LenSource(SourceCrawl)
				case 2:
					for _, g := range st.GroupByProduct(SourceCrawl) {
						_ = len(g)
					}
					st.Domains()
					st.Products("shard1.example")
				case 3:
					if err := st.WriteJSONL(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	close(stop)
	rg.Wait()

	want := writers * batches * batchSize
	if st.Len() != want {
		t.Fatalf("Len = %d, want %d (lost or duplicated writes)", st.Len(), want)
	}
	for w := 0; w < writers; w++ {
		domain := fmt.Sprintf("shard%d.example", w)
		rows := st.Filter(Query{Domain: domain, Round: -1})
		if len(rows) != batches*batchSize {
			t.Fatalf("domain %s rows = %d, want %d", domain, len(rows), batches*batchSize)
		}
		// Per-domain insertion order: each writer is serial, so its
		// batches must appear whole and in issue order.
		for i := 1; i < len(rows); i++ {
			prev, cur := rows[i-1], rows[i]
			if prev.PriceUnits/100 == cur.PriceUnits/100 {
				if prev.PriceUnits >= cur.PriceUnits {
					t.Fatalf("domain %s batch order broken at row %d", domain, i)
				}
			}
		}
		if got := len(st.Products(domain)); got != 5 {
			t.Fatalf("domain %s products = %d, want 5", domain, got)
		}
	}
	if got := len(st.Domains()); got != writers {
		t.Fatalf("Domains = %d, want %d", got, writers)
	}
	total, okN := st.LenSource(SourceCrawl)
	if total != want || okN != st.LenOK() {
		t.Fatalf("LenSource = (%d,%d), LenOK = %d, want total %d", total, okN, st.LenOK(), want)
	}

	// Serialization after concurrent batch interleavings must still come
	// out in global sequence order: a reload must answer per-domain
	// queries exactly as the live store does.
	var buf bytes.Buffer
	if err := st.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		q := Query{Domain: fmt.Sprintf("shard%d.example", w), Round: -1}
		if !reflect.DeepEqual(back.Filter(q), st.Filter(q)) {
			t.Fatalf("reload diverged from live store for %s", q.Domain)
		}
	}
}

// TestScanEarlyStop asserts the iterator honors yield's stop signal.
func TestScanEarlyStop(t *testing.T) {
	runBackends(t, func(t *testing.T, newBackend newBackendFunc) {
		testScanEarlyStop(t, newBackend(t))
	})
}

func testScanEarlyStop(t *testing.T, st Backend) {
	for i := 0; i < 100; i++ {
		st.Add(Observation{Domain: "a.com", SKU: fmt.Sprintf("S-%d", i), Round: -1, Source: SourceCrawl, OK: true})
	}
	n := 0
	for range st.Scan(Query{Round: -1}) {
		n++
		if n == 7 {
			break
		}
	}
	if n != 7 {
		t.Fatalf("early stop: %d", n)
	}
	// Domain-scoped path too.
	n = 0
	for range st.Scan(Query{Domain: "a.com", Round: -1}) {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("early stop (domain path): %d", n)
	}
}

// TestSnapshotIsolation pins Scan's snapshot semantics: observations
// admitted after the iterator is created do not appear mid-iteration.
func TestSnapshotIsolation(t *testing.T) {
	runBackends(t, func(t *testing.T, newBackend newBackendFunc) {
		testSnapshotIsolation(t, newBackend(t))
	})
}

func testSnapshotIsolation(t *testing.T, st Backend) {
	for i := 0; i < 10; i++ {
		st.Add(Observation{Domain: "a.com", SKU: "S", Round: -1, Source: SourceCrawl, OK: true})
	}
	seq := st.Scan(Query{Round: -1})
	n := 0
	for range seq {
		if n == 0 {
			// Mutate mid-iteration; the running scan must not see it.
			st.Add(Observation{Domain: "a.com", SKU: "S", Round: -1, Source: SourceCrawl, OK: true})
		}
		n++
	}
	if n != 10 {
		t.Fatalf("snapshot leaked: scanned %d rows, want 10", n)
	}
	if st.Len() != 11 {
		t.Fatalf("Len = %d", st.Len())
	}
}
