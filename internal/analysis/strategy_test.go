package analysis

import (
	"testing"
	"time"

	"sheriff/internal/money"
	"sheriff/internal/shop"
	"sheriff/internal/store"
)

// Real vantage-point IDs: the detector's controls come from the fleet's
// structure (same-fingerprint pairs across locations, the Barcelona trio
// at one location, USD consensus groups), so synthetic data must use them.
//
//	Windows/Chrome:  us-bos us-chi us-lin us-nyc br-sao es-win
//	Linux/Firefox:   be-lie fi-tam de-ber es-lin uk-lon
//	Macintosh/Safari: es-mac us-la
//	Windows/Firefox: us-alb

// crawlObs emits one OK crawl observation.
func crawlObs(st *store.Store, domain, sku, vp string, round int, at time.Time, units int64, cur string) {
	st.Add(store.Observation{
		Domain: domain, SKU: sku, VP: vp, VPLabel: vp,
		PriceUnits: units, Currency: cur,
		Time: at, Round: round, Source: store.SourceCrawl, OK: true,
	})
}

// crawlFail emits one failed-extraction crawl observation.
func crawlFail(st *store.Store, domain, sku, vp string, round int, at time.Time) {
	st.Add(store.Observation{
		Domain: domain, SKU: sku, VP: vp, VPLabel: vp,
		Time: at, Round: round, Source: store.SourceCrawl,
		OK: false, Err: "extract: no price found",
	})
}

// eurUnits converts USD minor units into the EUR display units a localized
// storefront would show on the given day.
func eurUnits(t *testing.T, usdUnits int64, at time.Time) int64 {
	t.Helper()
	eur, ok := money.ByCode("EUR")
	if !ok {
		t.Fatal("no EUR")
	}
	return market.ConvertRetail(money.FromMinor(usdUnits, money.USD), eur, at).Units
}

func roundTime(r int) time.Time { return t0.Add(time.Duration(r) * 24 * time.Hour) }

func TestDetectGeoPricing(t *testing.T) {
	st := store.New()
	// Brazil persistently 30% dearer than the US at the same fingerprint
	// (us-bos/us-chi/br-sao are all Windows/Chrome); prices in USD.
	for p := 0; p < 5; p++ {
		sku := "G-" + string(rune('A'+p))
		for r := 0; r < 5; r++ {
			at := roundTime(r)
			crawlObs(st, "geo.test", sku, "us-bos", r, at, 10000, "USD")
			crawlObs(st, "geo.test", sku, "us-chi", r, at, 10000, "USD")
			crawlObs(st, "geo.test", sku, "br-sao", r, at, 13000, "USD")
		}
	}
	rep := DetectStrategies(st, market, "geo.test", DetectOptions{})
	if !rep.Flagged(shop.FamilyGeo) {
		t.Fatalf("geo not flagged: %s", rep)
	}
	for _, f := range []shop.StrategyFamily{shop.FamilyFingerprint, shop.FamilyDisclosure, shop.FamilyTemporal} {
		if rep.Flagged(f) {
			t.Errorf("%s falsely flagged: %s", f, rep)
		}
	}
}

func TestDetectFingerprintPricing(t *testing.T) {
	st := store.New()
	// Pure fingerprint shop: Mac/Safari pays 1.07×, Windows/Chrome 1.03×,
	// identical at every location. The Barcelona trio exposes it.
	for p := 0; p < 5; p++ {
		sku := "F-" + string(rune('A'+p))
		for r := 0; r < 5; r++ {
			at := roundTime(r)
			for _, vp := range []string{"us-bos", "us-chi", "us-nyc"} { // Win/Chrome
				crawlObs(st, "fp.test", sku, vp, r, at, 10300, "USD")
			}
			crawlObs(st, "fp.test", sku, "us-la", r, at, 10700, "USD")  // Mac/Safari
			crawlObs(st, "fp.test", sku, "us-alb", r, at, 10000, "USD") // Win/FF
			crawlObs(st, "fp.test", sku, "es-lin", r, at, eurUnits(t, 10000, at), "EUR")
			crawlObs(st, "fp.test", sku, "es-mac", r, at, eurUnits(t, 10700, at), "EUR")
			crawlObs(st, "fp.test", sku, "es-win", r, at, eurUnits(t, 10300, at), "EUR")
		}
	}
	rep := DetectStrategies(st, market, "fp.test", DetectOptions{})
	if !rep.Flagged(shop.FamilyFingerprint) {
		t.Fatalf("fingerprint not flagged: %s", rep)
	}
	if rep.Flagged(shop.FamilyGeo) {
		t.Errorf("geo falsely flagged on a fingerprint-only shop: %s", rep)
	}
	if rep.Flagged(shop.FamilyTemporal) {
		t.Errorf("temporal falsely flagged: %s", rep)
	}
}

func TestDetectSelectiveDisclosure(t *testing.T) {
	st := store.New()
	for p := 0; p < 6; p++ {
		sku := "D-" + string(rune('A'+p))
		hidden := p < 4 // 4 of 6 products withheld from one vantage point
		for r := 0; r < 6; r++ {
			at := roundTime(r)
			if hidden {
				crawlFail(st, "disc.test", sku, "us-bos", r, at)
			} else {
				crawlObs(st, "disc.test", sku, "us-bos", r, at, 10000, "USD")
			}
			crawlObs(st, "disc.test", sku, "us-chi", r, at, 10000, "USD")
			crawlObs(st, "disc.test", sku, "us-nyc", r, at, 10000, "USD")
		}
	}
	rep := DetectStrategies(st, market, "disc.test", DetectOptions{})
	if !rep.Flagged(shop.FamilyDisclosure) {
		t.Fatalf("disclosure not flagged: %s", rep)
	}
	if rep.Flagged(shop.FamilyGeo) || rep.Flagged(shop.FamilyFingerprint) || rep.Flagged(shop.FamilyTemporal) {
		t.Errorf("spurious families: %s", rep)
	}
}

func TestDetectTemporalPricing(t *testing.T) {
	st := store.New()
	// Weekend markup: uniform across locations within every round, moving
	// between rounds.
	units := []int64{10000, 10000, 11200, 11200, 10000, 10000, 11200}
	for p := 0; p < 5; p++ {
		sku := "T-" + string(rune('A'+p))
		for r := 0; r < len(units); r++ {
			at := roundTime(r)
			for _, vp := range []string{"us-bos", "us-chi", "us-nyc", "us-lin"} {
				crawlObs(st, "temp.test", sku, vp, r, at, units[r], "USD")
			}
		}
	}
	rep := DetectStrategies(st, market, "temp.test", DetectOptions{})
	if !rep.Flagged(shop.FamilyTemporal) {
		t.Fatalf("temporal not flagged: %s", rep)
	}
	if rep.Flagged(shop.FamilyGeo) {
		t.Errorf("synchronized rounds read temporal pricing as geo: %s", rep)
	}
}

func TestABChurnNotFlaggedAsGeo(t *testing.T) {
	st := store.New()
	// Same-fingerprint locations disagree within rounds, but the dearer
	// side flips round to round — A/B bucket churn, not geo policy.
	for p := 0; p < 5; p++ {
		sku := "AB-" + string(rune('A'+p))
		for r := 0; r < 6; r++ {
			at := roundTime(r)
			hi, lo := int64(10500), int64(10000)
			if (p+r)%2 == 0 {
				hi, lo = lo, hi
			}
			crawlObs(st, "ab.test", sku, "us-bos", r, at, hi, "USD")
			crawlObs(st, "ab.test", sku, "br-sao", r, at, lo, "USD")
		}
	}
	rep := DetectStrategies(st, market, "ab.test", DetectOptions{})
	if rep.Flagged(shop.FamilyGeo) {
		t.Fatalf("A/B churn flagged as geo: %s", rep)
	}
}

func TestDetectNothingOnCleanShop(t *testing.T) {
	st := store.New()
	for p := 0; p < 4; p++ {
		sku := "C-" + string(rune('A'+p))
		for r := 0; r < 5; r++ {
			at := roundTime(r)
			for _, vp := range []string{"us-bos", "us-chi", "br-sao", "us-la"} {
				crawlObs(st, "clean.test", sku, vp, r, at, 9900, "USD")
			}
		}
	}
	rep := DetectStrategies(st, market, "clean.test", DetectOptions{})
	for _, f := range DetectableFamilies {
		if rep.Flagged(f) {
			t.Errorf("%s flagged on a uniform shop: %s", f, rep)
		}
	}
}
