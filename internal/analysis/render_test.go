package analysis

import (
	"strings"
	"testing"
)

func TestScatterRenderBasic(t *testing.T) {
	sc := Scatter{Title: "demo", XLabel: "x", YLabel: "y", Width: 40, Height: 10}
	sc.AddSeries("a", '*', [][2]float64{{1, 1}, {2, 2}, {3, 3}})
	out := sc.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	// 3 plot marks plus the one in the "*=a" legend.
	if strings.Count(out, "*") != 4 {
		t.Fatalf("want 3 marks + legend:\n%s", out)
	}
	if !strings.Contains(out, "*=a") {
		t.Fatalf("missing legend:\n%s", out)
	}
}

func TestScatterLogXPlacesDecadesApart(t *testing.T) {
	sc := Scatter{LogX: true, Width: 60, Height: 5}
	sc.AddSeries("", '*', [][2]float64{{10, 1}, {100, 1}, {1000, 1}})
	out := sc.Render()
	// All three on one row, roughly evenly spaced on the log axis.
	var starRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, "*") == 3 {
			starRow = line
		}
	}
	if starRow == "" {
		t.Fatalf("no row with 3 marks:\n%s", out)
	}
	first := strings.Index(starRow, "*")
	last := strings.LastIndex(starRow, "*")
	mid := strings.Index(starRow[first+1:], "*") + first + 1
	gap1, gap2 := mid-first, last-mid
	if gap1 < gap2-3 || gap1 > gap2+3 {
		t.Fatalf("log spacing uneven: %d vs %d\n%s", gap1, gap2, out)
	}
}

func TestScatterEmpty(t *testing.T) {
	sc := Scatter{Title: "empty"}
	if out := sc.Render(); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty scatter: %q", out)
	}
}

func TestScatterSkipsNonPositiveLogX(t *testing.T) {
	sc := Scatter{LogX: true, Width: 20, Height: 5}
	sc.AddSeries("", '*', [][2]float64{{0, 1}, {-5, 2}, {10, 1}})
	out := sc.Render()
	if strings.Count(out, "*") != 1 {
		t.Fatalf("non-positive x not skipped:\n%s", out)
	}
}

func TestRenderBoxStrip(t *testing.T) {
	rows := []DomainBox{
		{Domain: "a.com", Box: Box([]float64{1.0, 1.1, 1.2, 1.3, 1.4})},
		{Domain: "b.example.com", Box: Box([]float64{1.2, 1.25, 1.3})},
		{Domain: "empty.com"},
	}
	out := RenderBoxStrip("strips", rows, 40)
	if !strings.Contains(out, "a.com") || !strings.Contains(out, "b.example.com") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if strings.Count(out, "O") != 2 {
		t.Fatalf("want 2 medians:\n%s", out)
	}
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty row not marked:\n%s", out)
	}
	// Median markers annotated numerically.
	if !strings.Contains(out, "med=1.200") {
		t.Fatalf("median annotation missing:\n%s", out)
	}
}

func TestRenderBoxStripEmpty(t *testing.T) {
	if out := RenderBoxStrip("x", nil, 40); !strings.Contains(out, "(no data)") {
		t.Fatalf("got %q", out)
	}
}

func TestRenderFig5IncludesEnvelope(t *testing.T) {
	points := []PricePoint{
		{Domain: "a", SKU: "1", MinUSD: 10, MaxRatio: 2.5},
		{Domain: "a", SKU: "2", MinUSD: 5000, MaxRatio: 1.2},
	}
	out := RenderFig5(points)
	if !strings.Contains(out, "cheap (<=$100)") || !strings.Contains(out, "expensive (>$2000)") {
		t.Fatalf("envelope missing:\n%s", out)
	}
}

func TestRenderFig6FiltersVPs(t *testing.T) {
	series := []VPSeries{
		{VP: "us-nyc", Label: "USA - New York", Points: []RatioPoint{{MinUSD: 10, Ratio: 1.0}}},
		{VP: "fi-tam", Label: "Finland - Tampere", Points: []RatioPoint{{MinUSD: 10, Ratio: 1.3}}},
		{VP: "de-ber", Label: "Germany - Berlin", Points: []RatioPoint{{MinUSD: 10, Ratio: 1.1}}},
	}
	out := RenderFig6("x.com", series, []string{"us-nyc", "fi-tam"})
	if !strings.Contains(out, "New York") || !strings.Contains(out, "Tampere") {
		t.Fatalf("included VPs missing:\n%s", out)
	}
	if strings.Contains(out, "Berlin") {
		t.Fatalf("excluded VP rendered:\n%s", out)
	}
}

func TestRenderFig10(t *testing.T) {
	ls := LoginSeries{
		SKUs:     []string{"E-1", "E-2"},
		Accounts: []string{"", "userA"},
		USD: map[string][]float64{
			"":      {5, 10},
			"userA": {5.5, 9.5},
		},
	}
	out := RenderFig10(ls)
	if !strings.Contains(out, "w/o login") || !strings.Contains(out, "userA") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestLocationBoxesAdapter(t *testing.T) {
	rows := []LocationBox{{VP: "fi-tam", Label: "Finland - Tampere", Box: Box([]float64{1, 1.2})}}
	out := LocationBoxesToDomainBoxes(rows)
	if len(out) != 1 || out[0].Domain != "Finland - Tampere" {
		t.Fatalf("adapter: %+v", out)
	}
}
