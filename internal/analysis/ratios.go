package analysis

import (
	"sort"
	"time"

	"sheriff/internal/fx"
	"sheriff/internal/store"
)

// quotesOf converts successful observations into currency-filter quotes.
func quotesOf(obs []store.Observation) []fx.Quote {
	var out []fx.Quote
	for _, o := range obs {
		if !o.OK {
			continue
		}
		if a, ok := o.Amount(); ok {
			out = append(out, fx.Quote{Amount: a, Day: o.Time})
		}
	}
	return out
}

// GroupRatio applies the currency filter to a group of observations of one
// product at one instant/round and returns the conservative max/min USD
// ratio plus whether variation is real.
func GroupRatio(market *fx.Market, obs []store.Observation) (float64, bool) {
	return market.RealVariation(quotesOf(obs))
}

// usdOf converts one observation to USD at the day's mid fixing.
func usdOf(market *fx.Market, o store.Observation) (float64, bool) {
	a, ok := o.Amount()
	if !ok {
		return 0, false
	}
	return a.Float() * market.Mid(a.Currency, o.Time), true
}

// byRound partitions one product's crawl observations into rounds.
func byRound(obs []store.Observation) map[int][]store.Observation {
	out := map[int][]store.Observation{}
	for _, o := range obs {
		out[o.Round] = append(out[o.Round], o)
	}
	return out
}

// byCheck partitions one product's crowd observations into individual
// checks (a check's 14 observations share one timestamp).
func byCheck(obs []store.Observation) map[time.Time][]store.Observation {
	out := map[time.Time][]store.Observation{}
	for _, o := range obs {
		out[o.Time] = append(out[o.Time], o)
	}
	return out
}

// productRounds summarizes a crawled product: per-round conservative
// ratios, whether variation is persistent (present in a majority of
// rounds, with a stable who-pays-more partition), and the minimum USD
// price ever observed.
type productRounds struct {
	ratios     []float64            // conservative ratio per round with real variation
	rounds     int                  // rounds with >= 2 successful observations
	realRounds int                  // rounds whose variation survived the filter
	pairVotes  map[string]*pairVote // per VP pair: who was dearer, per round
	minUSD     float64
}

// pairVote counts, for one ordered VP pair, the rounds in which the first
// VP was dearer vs cheaper (near-equal rounds don't vote).
type pairVote struct {
	first, second int
}

// orderConsistency is the share of rounds one side must win for a pair's
// price order to count as persistent (the repetition defence of Sec. 2.2).
const orderConsistency = 0.75

// consistentMajority reports whether one side was dearer in at least
// orderConsistency of this pair's voting rounds. Fewer than two votes
// prove nothing.
func (v pairVote) consistentMajority() bool {
	total := v.first + v.second
	if total < 2 {
		return false
	}
	major := v.first
	if v.second > major {
		major = v.second
	}
	return float64(major)/float64(total) >= orderConsistency
}

// summarizeProduct folds one product's crawl observations.
func summarizeProduct(market *fx.Market, obs []store.Observation) productRounds {
	pr := productRounds{
		minUSD:    -1,
		pairVotes: map[string]*pairVote{},
	}
	rounds := byRound(obs)
	keys := make([]int, 0, len(rounds))
	for r := range rounds {
		keys = append(keys, r)
	}
	sort.Ints(keys)
	for _, r := range keys {
		group := rounds[r]
		quotes := quotesOf(group)
		if len(quotes) < 2 {
			continue
		}
		pr.rounds++
		ratio, real := market.RealVariation(quotes)
		if real {
			pr.realRounds++
			pr.ratios = append(pr.ratios, ratio)
			pr.voteSides(market, group)
		}
		for _, o := range group {
			if !o.OK {
				continue
			}
			if usd, ok := usdOf(market, o); ok && (pr.minUSD < 0 || usd < pr.minUSD) {
				pr.minUSD = usd
			}
		}
	}
	return pr
}

// pairEqualTol is the relative margin within which two vantage points are
// judged to pay the same price (absorbs cent rounding on FX round trips).
const pairEqualTol = 0.005

// voteSides records, for one varying round, the dearer side of every pair
// of observed vantage points. Missing VPs (failed fetches) simply don't
// vote, so a flaky round cannot distort the pairs it did observe.
func (pr *productRounds) voteSides(market *fx.Market, group []store.Observation) {
	tallyPairVotes(market, group, pr.pairVotes, nil)
}

// tallyPairVotes records the dearer side of every accepted pair of
// observed vantage points in one varying round (mid-fixing USD values;
// near-equal pairs abstain). accept filters pairs by VP id — nil accepts
// all. The strategy detector reuses this with same-fingerprint /
// same-location filters, so the paper's repetition defence lives in one
// place.
func tallyPairVotes(market *fx.Market, group []store.Observation, votes map[string]*pairVote, accept func(vpA, vpB string) bool) {
	type vpUSD struct {
		vp  string
		usd float64
	}
	var vals []vpUSD
	for _, o := range group {
		if !o.OK {
			continue
		}
		if v, ok := usdOf(market, o); ok {
			vals = append(vals, vpUSD{vp: o.VP, usd: v})
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].vp < vals[j].vp })
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			a, b := vals[i], vals[j]
			if accept != nil && !accept(a.vp, b.vp) {
				continue
			}
			base := a.usd
			if b.usd < base {
				base = b.usd
			}
			if base <= 0 {
				continue
			}
			diff := (a.usd - b.usd) / base
			if diff > -pairEqualTol && diff < pairEqualTol {
				continue // equal: no vote
			}
			key := a.vp + "|" + b.vp
			v := votes[key]
			if v == nil {
				v = &pairVote{}
				votes[key] = v
			}
			if diff > 0 {
				v.first++
			} else {
				v.second++
			}
		}
	}
}

// persistent reports whether variation held in a majority of measured
// rounds AND the same locations paid the premium each time — the paper's
// repetition defence: "we repeated the same set of measurements multiple
// times to guarantee that the results are repeatable. This decreases the
// possibility of A/B testing ... being the cause" (Sec. 2.2).
//
// Consistency is judged pairwise: genuine geo discrimination keeps every
// pair of vantage points in the same price order round after round, while
// A/B bucket churn flips pairs between rounds.
func (pr productRounds) persistent() bool {
	if pr.rounds == 0 || pr.realRounds*2 <= pr.rounds {
		return false
	}
	for _, v := range pr.pairVotes {
		if v.first+v.second < 2 {
			continue // a single disagreement sample proves nothing
		}
		if !v.consistentMajority() {
			return false
		}
	}
	return true
}

// maxRatio is the largest per-round conservative ratio (1 if none).
func (pr productRounds) maxRatio() float64 {
	m := 1.0
	for _, r := range pr.ratios {
		if r > m {
			m = r
		}
	}
	return m
}

// medianRatio is the median per-round conservative ratio (1 if none).
func (pr productRounds) medianRatio() float64 {
	if len(pr.ratios) == 0 {
		return 1
	}
	return Median(pr.ratios)
}
