package analysis

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestBoxBasics(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.N != 5 {
		t.Fatalf("Box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = %v %v", b.Q1, b.Q3)
	}
}

func TestBoxEmpty(t *testing.T) {
	b := Box(nil)
	if b.N != 0 {
		t.Fatal("empty box has data")
	}
	if b.String() != "(no data)" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestBoxDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Box(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Box sorted the caller's slice")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	v := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {0.75, 32.5},
	}
	for _, c := range cases {
		if got := Quantile(v, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMedianAndMean(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestBoxOrderingInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		b := Box(vals)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneInQ(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		sort.Float64s(vals)
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(vals, a) <= Quantile(vals, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
