package analysis

import (
	"testing"

	"sheriff/internal/shop"
	"sheriff/internal/store"
)

// pts builds a daily-consecutive consensus series starting at round 0,
// with each round's weekday taken from the shared t0 fixture — exactly
// how Product records the series from a synchronized daily crawl.
func pts(units ...int64) []consensusPoint {
	out := make([]consensusPoint, len(units))
	for i, u := range units {
		out[i] = consensusPoint{round: i, units: u, weekday: roundTime(i).UTC().Weekday()}
	}
	return out
}

func TestClassifyConsensus(t *testing.T) {
	// t0 is Friday 2013-02-01; roundTime(i) advances a day per round.
	const base = 50000
	weekend := func(i int) int64 { // +12% on Sat/Sun, like the weekday preset
		switch roundTime(i).UTC().Weekday().String() {
		case "Saturday", "Sunday":
			return base * 112 / 100
		}
		return base
	}
	var calendar, competitive, demand, drifty []int64
	for i := 0; i < 14; i++ {
		calendar = append(calendar, weekend(i))
	}
	// Held levels (2 days each), every reprice a >=3% jump.
	levels := []int64{50000, 55000, 50000, 47500, 52500, 50000, 55000}
	for _, l := range levels {
		competitive = append(competitive, l, l)
	}
	// Strict daily climbs (~3%) with restock drops (>=4%) every 5 days.
	cur := int64(base)
	for i := 0; i < 14; i++ {
		if i%5 == 4 {
			cur = base
		} else {
			cur += 1500
		}
		demand = append(demand, cur)
	}
	// Small (<1%) moves most days — drift's signature.
	for i := 0; i < 14; i++ {
		drifty = append(drifty, base+int64(i%3)*300)
	}

	cases := []struct {
		name string
		pts  []consensusPoint
		want seriesShape
	}{
		{"empty", nil, shapeFlat},
		{"constant", pts(base, base, base, base, base, base, base, base, base, base), shapeFlat},
		{"calendar", pts(calendar...), shapeCalendar},
		{"competitive", pts(competitive...), shapeCompetitive},
		{"demand", pts(demand...), shapeDemand},
		{"drift", pts(drifty...), shapeOther},
		// One week of a weekend pattern: moved, but too short to prove
		// periodicity or judge market shape — residual temporal.
		{"short-weekend", pts(calendar[:7]...), shapeOther},
		// A competitive shape below the market minimum stays temporal.
		{"short-competitive", pts(competitive[:8]...), shapeOther},
	}
	for _, tc := range cases {
		if got := classifyConsensus(tc.pts); got != tc.want {
			t.Errorf("%s: shape = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestCalendarPrecedesCompetitive pins the precedence rule: a weekend
// factor also yields held levels with big jumps, but a series that
// repeats exactly by weekday is weekday pricing, never market dynamics.
func TestCalendarPrecedesCompetitive(t *testing.T) {
	var units []int64
	for i := 0; i < 14; i++ {
		u := int64(50000)
		switch roundTime(i).UTC().Weekday().String() {
		case "Saturday", "Sunday":
			u = 56000
		}
		units = append(units, u)
	}
	series := pts(units...)
	if !competitiveShape(series) {
		t.Fatal("fixture broken: weekend series no longer resembles held levels")
	}
	if got := classifyConsensus(series); got != shapeCalendar {
		t.Fatalf("weekend series classified %v, want shapeCalendar", got)
	}
}

// TestMarketShapeNeedsConsecutiveRounds: run lengths and daily steps are
// meaningless across gaps, so a holey series is never judged as market
// dynamics.
func TestMarketShapeNeedsConsecutiveRounds(t *testing.T) {
	levels := []int64{50000, 50000, 55000, 55000, 50000, 50000, 47500, 47500, 52500, 52500, 55000, 55000}
	series := pts(levels...)
	series[6].round = 7 // introduce a one-round hole
	for i := 7; i < len(series); i++ {
		series[i].round = i + 1
	}
	if marketJudgeable(series) {
		t.Fatal("series with a gap judged market-eligible")
	}
	if got := classifyConsensus(series); got != shapeOther {
		t.Fatalf("holey competitive series classified %v, want shapeOther", got)
	}
}

// TestMarketRepricingNotTemporal is the differential test for the
// weekday/temporal detector against a moving base price: a domain whose
// every vantage point sees the identical competitive repricing path —
// pure market dynamics, no discrimination — must NOT flag temporal (or
// anything else but competitive), while the weekday domain beside it
// still must. Before the market subsystem, ANY cross-round consensus
// movement was attributed to the temporal family; this pins the
// separation.
func TestMarketRepricingNotTemporal(t *testing.T) {
	st := store.New()
	vps := []string{"us-bos", "us-chi", "us-nyc", "us-lin"}

	// market.test: held levels, 2 days each, >=4.5% reprices — the
	// leader-follower signature, identical at every vantage point.
	levels := []int64{50000, 55000, 50000, 47500, 52500, 50000, 55000}
	for p := 0; p < 5; p++ {
		sku := "M-" + string(rune('A'+p))
		for r := 0; r < 14; r++ {
			at := roundTime(r)
			for _, vp := range vps {
				crawlObs(st, "market.test", sku, vp, r, at, levels[r/2], "USD")
			}
		}
	}
	// weekday.test: the same cadence, moved by the calendar instead.
	for p := 0; p < 5; p++ {
		sku := "W-" + string(rune('A'+p))
		for r := 0; r < 14; r++ {
			at := roundTime(r)
			u := int64(50000)
			switch at.UTC().Weekday().String() {
			case "Saturday", "Sunday":
				u = 56000
			}
			for _, vp := range vps {
				crawlObs(st, "weekday.test", sku, vp, r, at, u, "USD")
			}
		}
	}

	mkt := DetectStrategies(st, market, "market.test", DetectOptions{})
	if !mkt.Flagged(shop.FamilyCompetitive) {
		t.Fatalf("competitive repricing not flagged: %s", mkt)
	}
	for _, f := range []shop.StrategyFamily{shop.FamilyTemporal, shop.FamilyGeo,
		shop.FamilyFingerprint, shop.FamilyDisclosure, shop.FamilyDemand} {
		if mkt.Flagged(f) {
			t.Errorf("market repricing falsely flagged %s: %s", f, mkt)
		}
	}

	wd := DetectStrategies(st, market, "weekday.test", DetectOptions{})
	if !wd.Flagged(shop.FamilyTemporal) {
		t.Fatalf("weekday pricing lost its temporal flag: %s", wd)
	}
	for _, f := range []shop.StrategyFamily{shop.FamilyCompetitive, shop.FamilyDemand} {
		if wd.Flagged(f) {
			t.Errorf("weekday pricing falsely flagged %s: %s", f, wd)
		}
	}
}

// TestDemandRepricingNotTemporal: the scarcity-pricing signature (daily
// climbs, restock drops) seen identically everywhere flags demand and
// nothing else.
func TestDemandRepricingNotTemporal(t *testing.T) {
	st := store.New()
	vps := []string{"us-bos", "us-chi", "us-nyc", "us-lin"}
	for p := 0; p < 5; p++ {
		sku := "D-" + string(rune('A'+p))
		cur := int64(50000)
		for r := 0; r < 14; r++ {
			if r > 0 {
				if r%5 == 0 {
					cur = 50000
				} else {
					cur += 1500
				}
			}
			at := roundTime(r)
			for _, vp := range vps {
				crawlObs(st, "demand.test", sku, vp, r, at, cur, "USD")
			}
		}
	}
	rep := DetectStrategies(st, market, "demand.test", DetectOptions{})
	if !rep.Flagged(shop.FamilyDemand) {
		t.Fatalf("demand repricing not flagged: %s", rep)
	}
	for _, f := range []shop.StrategyFamily{shop.FamilyTemporal, shop.FamilyGeo,
		shop.FamilyFingerprint, shop.FamilyDisclosure, shop.FamilyCompetitive} {
		if rep.Flagged(f) {
			t.Errorf("demand repricing falsely flagged %s: %s", f, rep)
		}
	}
}

// TestShortMarketSeriesStaysTemporal pins backwards compatibility: below
// minMarketRounds the classifier never claims a market shape, so a
// 7-round crawl (the historical default) reports moving consensus as
// temporal, exactly as before the market subsystem existed.
func TestShortMarketSeriesStaysTemporal(t *testing.T) {
	st := store.New()
	levels := []int64{50000, 50000, 55000, 55000, 47500, 47500, 52500}
	for p := 0; p < 5; p++ {
		sku := "S-" + string(rune('A'+p))
		for r := 0; r < 7; r++ {
			at := roundTime(r)
			for _, vp := range []string{"us-bos", "us-chi", "us-nyc", "us-lin"} {
				crawlObs(st, "short.test", sku, vp, r, at, levels[r], "USD")
			}
		}
	}
	rep := DetectStrategies(st, market, "short.test", DetectOptions{})
	if !rep.Flagged(shop.FamilyTemporal) {
		t.Fatalf("short moving series not reported temporal: %s", rep)
	}
	if rep.Flagged(shop.FamilyCompetitive) || rep.Flagged(shop.FamilyDemand) {
		t.Errorf("7-round series claimed a market shape: %s", rep)
	}
	// And the market families were not even eligible: the series is too
	// short to judge.
	if ev := rep.Evidence[shop.FamilyCompetitive]; ev.Eligible != 0 {
		t.Errorf("competitive eligible on a 7-round series: %+v", ev)
	}
}
