package analysis

import (
	"fmt"
	"sort"
	"strings"

	"sheriff/internal/fx"
	"sheriff/internal/geo"
	"sheriff/internal/store"
)

// DomainCount is one bar of Fig. 1: how many crowd checks against a domain
// showed real price variation.
type DomainCount struct {
	Domain string
	// Checks is the number of crowd checks against the domain.
	Checks int
	// WithVariation is how many survived the currency filter.
	WithVariation int
}

// Fig1 ranks domains by the number of crowd requests with price
// differences, descending — "Domains with the highest number of requests
// where price differences occurred".
func Fig1(st store.Reader, market *fx.Market) []DomainCount {
	perDomain := map[string]*DomainCount{}
	for key, obs := range st.Groups(store.SourceCrowd) {
		for _, check := range byCheck(obs) {
			dc := perDomain[key.Domain]
			if dc == nil {
				dc = &DomainCount{Domain: key.Domain}
				perDomain[key.Domain] = dc
			}
			dc.Checks++
			if _, real := GroupRatio(market, check); real {
				dc.WithVariation++
			}
		}
	}
	out := make([]DomainCount, 0, len(perDomain))
	for _, dc := range perDomain {
		if dc.WithVariation > 0 {
			out = append(out, *dc)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WithVariation != out[j].WithVariation {
			return out[i].WithVariation > out[j].WithVariation
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// DomainBox is one box of Fig. 2/4/9: a domain plus ratio statistics.
type DomainBox struct {
	Domain string
	Box    BoxStats
}

// Fig2 computes, per domain in the crowdsourced dataset, the distribution
// of conservative max/min ratios over checks that showed variation —
// "Magnitude of price differences per domain".
func Fig2(st store.Reader, market *fx.Market) []DomainBox {
	ratios := map[string][]float64{}
	for key, obs := range st.Groups(store.SourceCrowd) {
		for _, check := range byCheck(obs) {
			if ratio, real := GroupRatio(market, check); real {
				ratios[key.Domain] = append(ratios[key.Domain], ratio)
			}
		}
	}
	return domainBoxes(ratios)
}

// domainBoxes folds ratio lists into sorted DomainBox rows (ascending
// median, the paper's Fig. 4 ordering).
func domainBoxes(ratios map[string][]float64) []DomainBox {
	out := make([]DomainBox, 0, len(ratios))
	for d, rs := range ratios {
		out = append(out, DomainBox{Domain: d, Box: Box(rs)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Box.Median != out[j].Box.Median {
			return out[i].Box.Median < out[j].Box.Median
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// DomainExtent is one bar of Fig. 3: the fraction of a domain's crawled
// products with persistent price variation.
type DomainExtent struct {
	Domain string
	// Products is how many products were measured.
	Products int
	// Varied is how many showed persistent variation.
	Varied int
	// Extent is Varied/Products.
	Extent float64
}

// Fig3 measures the extent of price variation per crawled domain —
// "Measured extent of price variations for different domains". Persistence
// across rounds is required, which is what rejects A/B noise.
func Fig3(st store.Reader, market *fx.Market) []DomainExtent {
	perDomain := map[string]*DomainExtent{}
	for key, obs := range st.Groups(store.SourceCrawl) {
		de := perDomain[key.Domain]
		if de == nil {
			de = &DomainExtent{Domain: key.Domain}
			perDomain[key.Domain] = de
		}
		pr := summarizeProduct(market, obs)
		if pr.rounds == 0 {
			continue
		}
		de.Products++
		if pr.persistent() {
			de.Varied++
		}
	}
	out := make([]DomainExtent, 0, len(perDomain))
	for _, de := range perDomain {
		if de.Products > 0 {
			de.Extent = float64(de.Varied) / float64(de.Products)
		}
		out = append(out, *de)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Extent != out[j].Extent {
			return out[i].Extent > out[j].Extent
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// Fig4 computes per crawled domain the distribution of median
// (across rounds) conservative ratios over persistently varying products —
// "Magnitude of price variability per domain".
func Fig4(st store.Reader, market *fx.Market) []DomainBox {
	ratios := map[string][]float64{}
	for key, obs := range st.Groups(store.SourceCrawl) {
		pr := summarizeProduct(market, obs)
		if pr.persistent() {
			ratios[key.Domain] = append(ratios[key.Domain], pr.medianRatio())
		}
	}
	return domainBoxes(ratios)
}

// PricePoint is one dot of Fig. 5.
type PricePoint struct {
	Domain string
	SKU    string
	// MinUSD is the lowest USD price observed for the product.
	MinUSD float64
	// MaxRatio is the largest per-round conservative ratio.
	MaxRatio float64
}

// Fig5 computes the maximal ratio of price difference against the minimal
// product price, across all crawled stores.
func Fig5(st store.Reader, market *fx.Market) []PricePoint {
	var out []PricePoint
	for key, obs := range st.Groups(store.SourceCrawl) {
		pr := summarizeProduct(market, obs)
		if pr.minUSD <= 0 || len(pr.ratios) == 0 {
			continue
		}
		out = append(out, PricePoint{
			Domain: key.Domain, SKU: key.SKU,
			MinUSD: pr.minUSD, MaxRatio: pr.maxRatio(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MinUSD != out[j].MinUSD {
			return out[i].MinUSD < out[j].MinUSD
		}
		return out[i].SKU < out[j].SKU
	})
	return out
}

// Fig5Envelope summarizes Fig. 5 the way the paper reads it: the maximum
// ratio observed within price bands.
type Fig5Envelope struct {
	// Band labels the price range.
	Band string
	// Lo and Hi bound the band in USD.
	Lo, Hi float64
	// MaxRatio is the largest ratio seen in the band (1 when empty).
	MaxRatio float64
	// N is the number of products in the band.
	N int
}

// EnvelopeOf folds Fig. 5 points into the paper's three headline bands:
// cheap (≤$100) up to ×3, mid ($100–$2000) up to ×2, expensive (>$2000)
// under ×1.5.
func EnvelopeOf(points []PricePoint) []Fig5Envelope {
	bands := []Fig5Envelope{
		{Band: "cheap (<=$100)", Lo: 0, Hi: 100, MaxRatio: 1},
		{Band: "mid ($100-$2000)", Lo: 100, Hi: 2000, MaxRatio: 1},
		{Band: "expensive (>$2000)", Lo: 2000, Hi: 1e18, MaxRatio: 1},
	}
	for _, p := range points {
		for i := range bands {
			if p.MinUSD > bands[i].Lo && p.MinUSD <= bands[i].Hi {
				bands[i].N++
				if p.MaxRatio > bands[i].MaxRatio {
					bands[i].MaxRatio = p.MaxRatio
				}
			}
		}
	}
	return bands
}

// LocationBox is one box of Fig. 7: price-to-minimum ratios at one
// vantage point.
type LocationBox struct {
	// VP is the vantage point ID; Label the paper's axis label.
	VP, Label string
	Box       BoxStats
}

// Fig7 computes, for each vantage point, the distribution over
// (product, round) of the VP's USD price divided by the minimum USD price
// across all vantage points — "Magnitude of price differences per
// location".
func Fig7(st store.Reader, market *fx.Market) []LocationBox {
	ratiosByVP := map[string][]float64{}
	for _, obs := range st.Groups(store.SourceCrawl) {
		for _, group := range byRound(obs) {
			addLocationRatios(market, group, ratiosByVP)
		}
	}
	var out []LocationBox
	for _, vp := range geo.VantagePoints() {
		out = append(out, LocationBox{
			VP: vp.ID, Label: vp.Label, Box: Box(ratiosByVP[vp.ID]),
		})
	}
	return out
}

// addLocationRatios computes per-VP price/min ratios for one product-round
// group and accumulates them into acc.
func addLocationRatios(market *fx.Market, group []store.Observation, acc map[string][]float64) {
	type vpUSD struct {
		vp  string
		usd float64
	}
	var vals []vpUSD
	minUSD := -1.0
	for _, o := range group {
		if !o.OK {
			continue
		}
		usd, ok := usdOf(market, o)
		if !ok {
			continue
		}
		vals = append(vals, vpUSD{vp: o.VP, usd: usd})
		if minUSD < 0 || usd < minUSD {
			minUSD = usd
		}
	}
	if minUSD <= 0 || len(vals) < 2 {
		return
	}
	for _, v := range vals {
		acc[v.vp] = append(acc[v.vp], v.usd/minUSD)
	}
}

// Fig9 computes per crawled domain the distribution of
// price(Finland)/min-price ratios — "Magnitude of price differences per
// domain in Tampere, Finland". A median near 1.0 with Min == 1.0 means
// Finland is (sometimes) the cheapest location.
func Fig9(st store.Reader, market *fx.Market) []DomainBox {
	ratios := map[string][]float64{}
	for key, obs := range st.Groups(store.SourceCrawl) {
		for _, group := range byRound(obs) {
			acc := map[string][]float64{}
			addLocationRatios(market, group, acc)
			if fi := acc["fi-tam"]; len(fi) == 1 {
				ratios[key.Domain] = append(ratios[key.Domain], fi[0])
			}
		}
	}
	return domainBoxes(ratios)
}

// LoginSeries is Fig. 10: per-account price series over the sampled
// products, same location and instant.
type LoginSeries struct {
	// SKUs lists the products in plot order.
	SKUs []string
	// Accounts lists the series labels; "" is the anonymous visitor.
	Accounts []string
	// USD[account][i] is the price of SKUs[i] under that account.
	USD map[string][]float64
}

// Fig10 reconstructs the login experiment series from SourceLogin
// observations.
func Fig10(st store.Reader, market *fx.Market) LoginSeries {
	skuSet := map[string]bool{}
	accSet := map[string]bool{}
	prices := map[string]map[string]float64{} // account -> sku -> usd
	for o := range st.Scan(store.Query{Source: store.SourceLogin, Round: -1, OnlyOK: true}) {
		skuSet[o.SKU] = true
		accSet[o.Account] = true
		usd, ok := usdOf(market, o)
		if !ok {
			continue
		}
		if prices[o.Account] == nil {
			prices[o.Account] = map[string]float64{}
		}
		prices[o.Account][o.SKU] = usd
	}
	ls := LoginSeries{USD: map[string][]float64{}}
	for sku := range skuSet {
		ls.SKUs = append(ls.SKUs, sku)
	}
	sort.Strings(ls.SKUs)
	for acc := range accSet {
		ls.Accounts = append(ls.Accounts, acc)
	}
	sort.Strings(ls.Accounts)
	for _, acc := range ls.Accounts {
		series := make([]float64, len(ls.SKUs))
		for i, sku := range ls.SKUs {
			series[i] = prices[acc][sku]
		}
		ls.USD[acc] = series
	}
	return ls
}

// Differing counts products whose price under the account differs from the
// anonymous price by more than tol (relative).
func (ls LoginSeries) Differing(account string, tol float64) int {
	anon, ok := ls.USD[""]
	acc, ok2 := ls.USD[account]
	if !ok || !ok2 {
		return 0
	}
	n := 0
	for i := range anon {
		if anon[i] <= 0 || acc[i] <= 0 {
			continue // missing datapoint, not a price difference
		}
		rel := (acc[i] - anon[i]) / anon[i]
		if rel < 0 {
			rel = -rel
		}
		if rel > tol {
			n++
		}
	}
	return n
}

// Summary is the dataset overview quoted in Sec. 3.2 and 4.1.
type Summary struct {
	CrowdRequests   int
	CrowdUsers      int
	CrowdCountries  int
	CrowdDomains    int
	CrawledDomains  int
	CrawledProducts int
	CrawlRounds     int
	ExtractedPrices int
}

// Summarize derives the dataset summary from the store plus the crowd
// campaign's user statistics (user identities are campaign state, not
// observations).
func Summarize(st store.Reader, crowdUsers, crowdCountries, crowdDomains int) Summary {
	s := Summary{
		CrowdUsers:     crowdUsers,
		CrowdCountries: crowdCountries,
		CrowdDomains:   crowdDomains,
	}
	checkTimes := map[string]bool{}
	crawlDomains := map[string]bool{}
	crawlProducts := map[store.Key]bool{}
	maxRound := -1
	for o := range st.Scan(store.Query{Source: store.SourceCrowd, Round: -1}) {
		checkTimes[o.Domain+"|"+o.SKU+"|"+o.Time.String()] = true
	}
	for o := range st.Scan(store.Query{Source: store.SourceCrawl, Round: -1}) {
		crawlDomains[o.Domain] = true
		crawlProducts[store.Key{Domain: o.Domain, SKU: o.SKU}] = true
		if o.Round > maxRound {
			maxRound = o.Round
		}
	}
	_, s.ExtractedPrices = st.LenSource(store.SourceCrawl)
	s.CrowdRequests = len(checkTimes)
	s.CrawledDomains = len(crawlDomains)
	s.CrawledProducts = len(crawlProducts)
	s.CrawlRounds = maxRound + 1
	return s
}

// RenderTable renders rows of (label, value) pairs with aligned columns —
// the shared text-output helper for cmd/analyze and cmd/experiments.
func RenderTable(title string, header [2]string, rows [][2]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	w := len(header[0])
	for _, r := range rows {
		if len(r[0]) > w {
			w = len(r[0])
		}
	}
	fmt.Fprintf(&b, "%-*s  %s\n", w, header[0], header[1])
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", w, r[0], r[1])
	}
	return b.String()
}
