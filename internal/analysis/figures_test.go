package analysis

import (
	"math"
	"testing"
	"time"

	"sheriff/internal/fx"
	"sheriff/internal/store"
)

var (
	market = fx.NewMarket(1)
	t0     = time.Date(2013, 2, 1, 12, 0, 0, 0, time.UTC)
)

// addCheck writes a synthetic crowd check (one obs per listed VP/price).
func addCheck(st *store.Store, domain, sku string, at time.Time, pricesUSD map[string]int64) {
	for vp, units := range pricesUSD {
		st.Add(store.Observation{
			Domain: domain, SKU: sku, VP: vp, VPLabel: vp,
			Country: "US", City: "Boston",
			PriceUnits: units, Currency: "USD",
			Time: at, Round: -1, Source: store.SourceCrowd, OK: true,
		})
	}
}

// addCrawlRound writes one crawl round for a product. vpPrices maps VP id
// to (country, units).
type vpPrice struct {
	country string
	city    string
	units   int64
	cur     string
}

func addCrawlRound(st *store.Store, domain, sku string, round int, at time.Time, prices map[string]vpPrice) {
	for vp, p := range prices {
		cur := p.cur
		if cur == "" {
			cur = "USD"
		}
		st.Add(store.Observation{
			Domain: domain, SKU: sku, VP: vp, VPLabel: vp,
			Country: p.country, City: p.city,
			PriceUnits: p.units, Currency: cur,
			Time: at, Round: round, Source: store.SourceCrawl, OK: true,
		})
	}
}

func TestFig1RanksByVariationCount(t *testing.T) {
	st := store.New()
	// varies.com: 3 checks, all varying. flat.com: 2 checks, none varying.
	for i := 0; i < 3; i++ {
		addCheck(st, "varies.com", "V-1", t0.Add(time.Duration(i)*time.Hour),
			map[string]int64{"a": 10000, "b": 13000})
	}
	for i := 0; i < 2; i++ {
		addCheck(st, "flat.com", "F-1", t0.Add(time.Duration(i)*time.Hour),
			map[string]int64{"a": 5000, "b": 5000})
	}
	addCheck(st, "once.com", "O-1", t0, map[string]int64{"a": 1000, "b": 1200})

	fig := Fig1(st, market)
	if len(fig) != 2 {
		t.Fatalf("Fig1 rows = %d, want 2 (flat.com excluded)", len(fig))
	}
	if fig[0].Domain != "varies.com" || fig[0].WithVariation != 3 {
		t.Fatalf("row 0 = %+v", fig[0])
	}
	if fig[1].Domain != "once.com" || fig[1].WithVariation != 1 {
		t.Fatalf("row 1 = %+v", fig[1])
	}
}

func TestFig2RatioMagnitude(t *testing.T) {
	st := store.New()
	addCheck(st, "shop.com", "S-1", t0, map[string]int64{"a": 10000, "b": 12000})
	addCheck(st, "shop.com", "S-2", t0.Add(time.Hour), map[string]int64{"a": 10000, "b": 14000})
	fig := Fig2(st, market)
	if len(fig) != 1 {
		t.Fatalf("rows = %d", len(fig))
	}
	b := fig[0].Box
	if b.N != 2 {
		t.Fatalf("N = %d", b.N)
	}
	// Conservative ratios are slightly below nominal 1.2/1.4 (same-currency
	// USD quotes have zero spread, so they equal the nominal here).
	if math.Abs(b.Min-1.2) > 0.01 || math.Abs(b.Max-1.4) > 0.01 {
		t.Fatalf("box = %+v", b)
	}
}

func TestFig3PersistenceRejectsABNoise(t *testing.T) {
	st := store.New()
	// Product P: varies every one of 5 rounds (persistent).
	// Product Q: varies in only 1 of 5 rounds (A/B-style flicker).
	// Product R: never varies.
	for round := 0; round < 5; round++ {
		at := t0.AddDate(0, 0, round)
		addCrawlRound(st, "d.com", "P", round, at, map[string]vpPrice{
			"us-bos": {country: "US", units: 10000},
			"fi-tam": {country: "FI", units: 13000},
		})
		q := int64(10000)
		if round == 2 {
			q = 11000
		}
		addCrawlRound(st, "d.com", "Q", round, at, map[string]vpPrice{
			"us-bos": {country: "US", units: 10000},
			"fi-tam": {country: "FI", units: q},
		})
		addCrawlRound(st, "d.com", "R", round, at, map[string]vpPrice{
			"us-bos": {country: "US", units: 9000},
			"fi-tam": {country: "FI", units: 9000},
		})
	}
	fig := Fig3(st, market)
	if len(fig) != 1 {
		t.Fatalf("rows = %d", len(fig))
	}
	de := fig[0]
	if de.Products != 3 || de.Varied != 1 {
		t.Fatalf("extent row = %+v (persistence filter broken)", de)
	}
	if math.Abs(de.Extent-1.0/3.0) > 1e-9 {
		t.Fatalf("extent = %v", de.Extent)
	}
}

func TestFig4OnlyPersistentProducts(t *testing.T) {
	st := store.New()
	for round := 0; round < 4; round++ {
		at := t0.AddDate(0, 0, round)
		addCrawlRound(st, "d.com", "P", round, at, map[string]vpPrice{
			"us-bos": {country: "US", units: 10000},
			"fi-tam": {country: "FI", units: 12500},
		})
		addCrawlRound(st, "d.com", "R", round, at, map[string]vpPrice{
			"us-bos": {country: "US", units: 9000},
			"fi-tam": {country: "FI", units: 9000},
		})
	}
	fig := Fig4(st, market)
	if len(fig) != 1 {
		t.Fatalf("rows = %d", len(fig))
	}
	if fig[0].Box.N != 1 {
		t.Fatalf("N = %d, want 1 (only persistent product P)", fig[0].Box.N)
	}
	if math.Abs(fig[0].Box.Median-1.25) > 0.01 {
		t.Fatalf("median = %v", fig[0].Box.Median)
	}
}

func TestFig5EnvelopeBands(t *testing.T) {
	st := store.New()
	at := t0
	// Cheap product with huge ratio, expensive product with small ratio.
	addCrawlRound(st, "d.com", "CHEAP", 0, at, map[string]vpPrice{
		"us-bos": {country: "US", units: 1000}, // $10
		"fi-tam": {country: "FI", units: 2800}, // $28 -> x2.8
	})
	addCrawlRound(st, "d.com", "DEAR", 0, at, map[string]vpPrice{
		"us-bos": {country: "US", units: 500000}, // $5000
		"fi-tam": {country: "FI", units: 650000}, // x1.3
	})
	points := Fig5(st, market)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].SKU != "CHEAP" || points[0].MaxRatio < 2.7 {
		t.Fatalf("point 0 = %+v", points[0])
	}
	env := EnvelopeOf(points)
	if env[0].MaxRatio < 2.7 || env[0].N != 1 {
		t.Fatalf("cheap band = %+v", env[0])
	}
	if env[2].MaxRatio > 1.35 || env[2].N != 1 {
		t.Fatalf("expensive band = %+v", env[2])
	}
}

func TestFig7LocationRatios(t *testing.T) {
	st := store.New()
	for round := 0; round < 3; round++ {
		at := t0.AddDate(0, 0, round)
		addCrawlRound(st, "d.com", "P", round, at, map[string]vpPrice{
			"us-bos": {country: "US", city: "Boston", units: 10000},
			"us-chi": {country: "US", city: "Chicago", units: 10000},
			"fi-tam": {country: "FI", city: "Tampere", units: 12000},
		})
	}
	fig := Fig7(st, market)
	var bos, fi BoxStats
	for _, lb := range fig {
		switch lb.VP {
		case "us-bos":
			bos = lb.Box
		case "fi-tam":
			fi = lb.Box
		}
	}
	if bos.N != 3 || math.Abs(bos.Median-1.0) > 1e-9 {
		t.Fatalf("Boston box = %+v", bos)
	}
	if fi.N != 3 || math.Abs(fi.Median-1.2) > 1e-9 {
		t.Fatalf("Finland box = %+v", fi)
	}
	if len(fig) != 14 {
		t.Fatalf("locations = %d, want all 14 VPs listed", len(fig))
	}
}

func TestFig9FinlandPremium(t *testing.T) {
	st := store.New()
	addCrawlRound(st, "premium.com", "P", 0, t0, map[string]vpPrice{
		"us-bos": {country: "US", units: 10000},
		"fi-tam": {country: "FI", units: 13000},
	})
	addCrawlRound(st, "exception.com", "Q", 0, t0, map[string]vpPrice{
		"us-bos": {country: "US", units: 13000},
		"fi-tam": {country: "FI", units: 10000},
	})
	fig := Fig9(st, market)
	if len(fig) != 2 {
		t.Fatalf("rows = %d", len(fig))
	}
	// Sorted ascending by median: the exception (ratio 1.0) comes first.
	if fig[0].Domain != "exception.com" || math.Abs(fig[0].Box.Median-1.0) > 1e-9 {
		t.Fatalf("row 0 = %+v", fig[0])
	}
	if fig[1].Domain != "premium.com" || math.Abs(fig[1].Box.Median-1.3) > 1e-9 {
		t.Fatalf("row 1 = %+v", fig[1])
	}
}

func TestFig10SeriesAndDiffering(t *testing.T) {
	st := store.New()
	skus := []string{"E-1", "E-2", "E-3"}
	prices := map[string][]int64{
		"":      {1000, 2000, 3000},
		"userA": {1000, 2200, 2900},
		"userB": {1000, 2000, 3000},
	}
	for acc, series := range prices {
		for i, sku := range skus {
			st.Add(store.Observation{
				Domain: "amazon.sim", SKU: sku, VP: "us-bos", VPLabel: "USA - Boston",
				Country: "US", PriceUnits: series[i], Currency: "USD",
				Time: t0, Round: -1, Source: store.SourceLogin,
				Account: acc, OK: true,
			})
		}
	}
	fig := Fig10(st, market)
	if len(fig.SKUs) != 3 || len(fig.Accounts) != 3 {
		t.Fatalf("series shape: %+v", fig)
	}
	if got := fig.Differing("userA", 0.02); got != 2 {
		t.Fatalf("userA differing = %d, want 2", got)
	}
	if got := fig.Differing("userB", 0.02); got != 0 {
		t.Fatalf("userB differing = %d, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	st := store.New()
	addCheck(st, "a.com", "A-1", t0, map[string]int64{"x": 100, "y": 110})
	addCheck(st, "a.com", "A-1", t0.Add(time.Hour), map[string]int64{"x": 100, "y": 110})
	for round := 0; round < 7; round++ {
		addCrawlRound(st, "b.com", "B-1", round, t0.AddDate(0, 0, round), map[string]vpPrice{
			"us-bos": {country: "US", units: 1000},
			"fi-tam": {country: "FI", units: 1100},
		})
	}
	s := Summarize(st, 340, 18, 600)
	if s.CrowdRequests != 2 {
		t.Fatalf("requests = %d", s.CrowdRequests)
	}
	if s.CrawledDomains != 1 || s.CrawledProducts != 1 || s.CrawlRounds != 7 {
		t.Fatalf("crawl summary = %+v", s)
	}
	if s.ExtractedPrices != 14 {
		t.Fatalf("extracted = %d", s.ExtractedPrices)
	}
	if s.CrowdUsers != 340 || s.CrowdCountries != 18 || s.CrowdDomains != 600 {
		t.Fatalf("crowd pass-through = %+v", s)
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable("Demo", [2]string{"domain", "count"}, [][2]string{
		{"a.com", "5"}, {"longer-domain.com", "2"},
	})
	if !containsAll(out, "== Demo ==", "a.com", "longer-domain.com", "count") {
		t.Fatalf("render:\n%s", out)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestCompareCampaigns(t *testing.T) {
	st := store.New()
	// confirmed.com: crowd-flagged and crawl-confirmed.
	addCheck(st, "confirmed.com", "C-1", t0, map[string]int64{"a": 10000, "b": 12500})
	for round := 0; round < 3; round++ {
		addCrawlRound(st, "confirmed.com", "C-1", round, t0.AddDate(0, 0, round), map[string]vpPrice{
			"us-bos": {country: "US", units: 10000},
			"fi-tam": {country: "FI", units: 12500},
		})
	}
	// refuted.com: crowd saw variation once, crawl shows none.
	addCheck(st, "refuted.com", "R-1", t0, map[string]int64{"a": 5000, "b": 5600})
	for round := 0; round < 3; round++ {
		addCrawlRound(st, "refuted.com", "R-1", round, t0.AddDate(0, 0, round), map[string]vpPrice{
			"us-bos": {country: "US", units: 5000},
			"fi-tam": {country: "FI", units: 5000},
		})
	}
	// crowdonly.com: flagged but never crawled.
	addCheck(st, "crowdonly.com", "O-1", t0, map[string]int64{"a": 2000, "b": 2400})

	agg := CompareCampaigns(st, market)
	if len(agg.CrowdFlagged) != 3 {
		t.Fatalf("flagged = %v", agg.CrowdFlagged)
	}
	if len(agg.CrawlConfirmed) != 1 || agg.CrawlConfirmed[0] != "confirmed.com" {
		t.Fatalf("confirmed = %v", agg.CrawlConfirmed)
	}
	if len(agg.CrawlRefuted) != 1 || agg.CrawlRefuted[0] != "refuted.com" {
		t.Fatalf("refuted = %v", agg.CrawlRefuted)
	}
	if len(agg.NotCrawled) != 1 || agg.NotCrawled[0] != "crowdonly.com" {
		t.Fatalf("not crawled = %v", agg.NotCrawled)
	}
	if rate := agg.ConfirmationRate(); rate != 0.5 {
		t.Fatalf("confirmation rate = %v", rate)
	}
	// Crowd and crawl medians for confirmed.com are both 1.25: delta ~0.
	if agg.MedianRatioDelta > 0.01 {
		t.Fatalf("ratio delta = %v", agg.MedianRatioDelta)
	}
}

func TestConfirmationRateEmpty(t *testing.T) {
	if rate := (CampaignAgreement{}).ConfirmationRate(); rate != 1 {
		t.Fatalf("empty rate = %v", rate)
	}
}
