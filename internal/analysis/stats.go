// Package analysis computes every figure of the paper's evaluation from a
// store of observations: the crowdsourced rankings (Fig. 1/2), the crawl
// extents and magnitudes (Fig. 3/4), the product-price scatter (Fig. 5),
// per-retailer strategy profiles (Fig. 6), location effects (Fig. 7/8/9)
// and the login experiment series (Fig. 10), plus the dataset summary and
// third-party presence numbers quoted in the text.
//
// All monetary comparisons go through the fx currency filter (Sec. 2.2):
// a "variation" below always means variation that survives worst-case
// exchange-rate translation.
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// BoxStats is a five-number summary plus count — the data behind one box
// of the paper's boxplots.
type BoxStats struct {
	// Min and Max are the extreme values.
	Min, Max float64
	// Q1, Median, Q3 are the quartiles.
	Q1, Median, Q3 float64
	// N is the sample size.
	N int
}

// Box computes BoxStats over values. Zero N means no data.
func Box(values []float64) BoxStats {
	if len(values) == 0 {
		return BoxStats{}
	}
	v := make([]float64, len(values))
	copy(v, values)
	sort.Float64s(v)
	return BoxStats{
		Min:    v[0],
		Q1:     Quantile(v, 0.25),
		Median: Quantile(v, 0.5),
		Q3:     Quantile(v, 0.75),
		Max:    v[len(v)-1],
		N:      len(v),
	}
}

// Quantile returns the q-quantile (0..1) of sorted values using linear
// interpolation. It panics on an empty slice: quantiles of nothing are a
// programming error.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("analysis: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is the 0.5 quantile of (a copy of) values.
func Median(values []float64) float64 {
	if len(values) == 0 {
		panic("analysis: Median of empty slice")
	}
	v := make([]float64, len(values))
	copy(v, values)
	sort.Float64s(v)
	return Quantile(v, 0.5)
}

// Mean averages values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// String renders the five-number summary compactly.
func (b BoxStats) String() string {
	if b.N == 0 {
		return "(no data)"
	}
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f n=%d",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
}
