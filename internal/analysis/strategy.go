package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sheriff/internal/fx"
	"sheriff/internal/geo"
	"sheriff/internal/shop"
	"sheriff/internal/store"
)

// This file is the per-rule detector: it attributes the variation observed
// in a domain's crawl data to discrimination strategy families
// (shop.StrategyFamily), using the structure of the vantage-point fleet as
// its controls:
//
//   - geo: vantage points with the SAME browser fingerprint at different
//     locations disagree within a synchronized round, persistently and
//     with a stable who-pays-more order (the paper's repetition defence
//     filters A/B churn);
//   - fingerprint: vantage points at the SAME location with different
//     fingerprints disagree — the Barcelona trio exists exactly for this
//     (Fig. 7's three Spanish browser configurations);
//   - disclosure: a vantage point persistently fails extraction on a
//     product every other vantage point reads fine — selective "price on
//     request" withholding, not transient 503 noise (which re-rolls per
//     simulated day);
//   - temporal: the consensus price of same-fingerprint, USD-currency
//     vantage points is uniform within every round yet moves across
//     rounds — drift or weekday pricing, invisible to any synchronized
//     cross-location comparison and therefore never attributed to geo.
//
// A consensus series that moves is NOT automatically discrimination:
// competitive repricing and demand-driven scarcity pricing
// (internal/market) move the base price identically for every client.
// The consensus-series classifier (classifyConsensus) separates these
// dynamics from the temporal discrimination strategies by shape —
// weekday-periodic series are calendar pricing (temporal), held levels
// punctuated by repricing jumps are competitive dynamics, strict daily
// climbs broken by restock drops are demand dynamics, and anything
// else that moves stays temporal. A market verdict must never flip a
// geo/fingerprint/disclosure verdict: those compare across the fleet
// within a round, where a market-wide move is invisible.
//
// The scenario matrix (internal/core) scores these verdicts against the
// ground-truth rule families each scenario retailer compiled.

// DetectOptions tunes DetectStrategies; zero values take the defaults.
type DetectOptions struct {
	// MinProducts is the minimum number of affected products before a
	// family is flagged (default 3).
	MinProducts int
	// MinFraction is the minimum affected share of eligible products
	// (default 0.08).
	MinFraction float64
	// MinFailRounds is how many rounds a vantage point must persistently
	// fail (while another succeeds) to count as withheld (default 3).
	MinFailRounds int
}

func (o DetectOptions) withDefaults() DetectOptions {
	if o.MinProducts <= 0 {
		o.MinProducts = 3
	}
	if o.MinFraction <= 0 {
		o.MinFraction = 0.08
	}
	if o.MinFailRounds <= 0 {
		o.MinFailRounds = 3
	}
	return o
}

// FamilyEvidence is one family's verdict for a domain.
type FamilyEvidence struct {
	// Family is the strategy family judged.
	Family shop.StrategyFamily
	// Flagged reports whether the domain exercises the family.
	Flagged bool
	// Affected is how many products exhibit the effect; Eligible how many
	// carried enough data to judge.
	Affected, Eligible int
}

// Affected01 is the affected share of eligible products in [0, 1]
// (0 when nothing was eligible).
func (e FamilyEvidence) Affected01() float64 {
	if e.Eligible == 0 {
		return 0
	}
	return float64(e.Affected) / float64(e.Eligible)
}

// StrategyReport attributes a domain's observed variation to strategy
// families.
type StrategyReport struct {
	// Domain judged.
	Domain string
	// Evidence per family, keyed by family.
	Evidence map[shop.StrategyFamily]FamilyEvidence
}

// Flagged reports whether a family was detected.
func (r StrategyReport) Flagged(f shop.StrategyFamily) bool {
	return r.Evidence[f].Flagged
}

// String renders a compact one-line verdict for reports.
func (r StrategyReport) String() string {
	fams := make([]string, 0, len(r.Evidence))
	for f := range r.Evidence {
		fams = append(fams, string(f))
	}
	sort.Strings(fams)
	parts := make([]string, 0, len(fams))
	for _, f := range fams {
		e := r.Evidence[shop.StrategyFamily(f)]
		mark := "-"
		if e.Flagged {
			mark = "+"
		}
		parts = append(parts, fmt.Sprintf("%s%s(%d/%d)", mark, f, e.Affected, e.Eligible))
	}
	return r.Domain + ": " + strings.Join(parts, " ")
}

// DetectableFamilies lists the families DetectStrategies can attribute
// from crawl data. Account and segment pricing need the dedicated login
// and persona experiments; A/B churn is what the persistence filters
// remove rather than report.
var DetectableFamilies = []shop.StrategyFamily{
	shop.FamilyGeo, shop.FamilyFingerprint, shop.FamilyDisclosure, shop.FamilyTemporal,
	shop.FamilyCompetitive, shop.FamilyDemand,
}

// vpMeta caches per-vantage-point controls.
type vpMeta struct {
	fingerprint string // BrowserProfile.Key()
	location    string // "CC/City"
	usd         bool   // vantage point is billed in USD
}

func vantageMeta() map[string]vpMeta {
	out := map[string]vpMeta{}
	for _, vp := range geo.VantagePoints() {
		out[vp.ID] = vpMeta{
			fingerprint: vp.Browser.Key(),
			location:    vp.Location.Country.Code + "/" + vp.Location.City,
			usd:         vp.Location.Country.Currency.Code == "USD",
		}
	}
	return out
}

// FamilyContribution is one product's contribution to a family's tally:
// whether the product carried enough data to judge and, if so, whether
// it shows the family's signature (Affected implies Eligible).
type FamilyContribution struct {
	Eligible, Affected bool
}

// ProductVerdict is one crawled product's per-family detector verdict —
// the unit the incremental engine caches and diffs: a domain's family
// tallies are exactly the sums of its products' contributions.
type ProductVerdict struct {
	Geo, Fingerprint, Disclosure, Temporal FamilyContribution
	Competitive, Demand                    FamilyContribution
}

// Of returns the contribution for one detectable family.
func (v ProductVerdict) Of(f shop.StrategyFamily) FamilyContribution {
	switch f {
	case shop.FamilyGeo:
		return v.Geo
	case shop.FamilyFingerprint:
		return v.Fingerprint
	case shop.FamilyDisclosure:
		return v.Disclosure
	case shop.FamilyTemporal:
		return v.Temporal
	case shop.FamilyCompetitive:
		return v.Competitive
	case shop.FamilyDemand:
		return v.Demand
	}
	return FamilyContribution{}
}

// Detector is the per-product strategy detector with its controls
// resolved once: the vantage-point metadata, the pair filters and the
// thresholds. DetectStrategies wraps it for whole-domain full
// recomputation; the incremental engine (internal/aggregate) calls
// Product per touched product and sums contributions itself — both paths
// run the identical verdict code, which is what the equivalence contract
// rests on.
type Detector struct {
	market *fx.Market
	opts   DetectOptions
	meta   map[string]vpMeta
}

// NewDetector builds a detector; zero-valued options take the defaults.
func NewDetector(market *fx.Market, opts DetectOptions) *Detector {
	return &Detector{market: market, opts: opts.withDefaults(), meta: vantageMeta()}
}

// Options returns the detector's resolved options.
func (d *Detector) Options() DetectOptions { return d.opts }

// acceptGeo admits pairs that share a fingerprint across locations.
func (d *Detector) acceptGeo(a, b string) bool {
	ma, mb := d.meta[a], d.meta[b]
	return ma.location != mb.location && ma.fingerprint == mb.fingerprint
}

// acceptFingerprint admits pairs that share a location across
// fingerprints.
func (d *Detector) acceptFingerprint(a, b string) bool {
	ma, mb := d.meta[a], d.meta[b]
	return ma.fingerprint != mb.fingerprint && ma.location == mb.location
}

// Product judges one product from its crawl observations (any order;
// rounds are partitioned internally). Observations of other sources must
// not be passed.
func (d *Detector) Product(obs []store.Observation) ProductVerdict {
	meta, market := d.meta, d.market
	rounds := byRound(obs)
	keys := make([]int, 0, len(rounds))
	for r := range rounds {
		keys = append(keys, r)
	}
	sort.Ints(keys)

	var (
		geoElig, geoHits int
		geoSides         = map[string]*pairVote{}
		fpElig, fpHits   int
		fpSides          = map[string]*pairVote{}
		consensus        []consensusPoint // per-round same-fingerprint USD consensus
		okRounds         = map[string]int{}
		failRounds       = map[string]int{} // persistent extraction failures
	)

	for _, rk := range keys {
		group := rounds[rk]
		byFP := map[string][]store.Observation{}  // fingerprint → OK obs
		byLoc := map[string][]store.Observation{} // location → OK obs
		var roundTime time.Time                   // earliest observation time of the round
		for _, o := range group {
			m, known := meta[o.VP]
			if !known {
				continue
			}
			if roundTime.IsZero() || o.Time.Before(roundTime) {
				roundTime = o.Time
			}
			if o.OK {
				okRounds[o.VP]++
				byFP[m.fingerprint] = append(byFP[m.fingerprint], o)
				byLoc[m.location] = append(byLoc[m.location], o)
			} else if strings.Contains(o.Err, "no price") {
				failRounds[o.VP]++
			}
		}

		// Geo: same fingerprint, multiple locations, currency filter.
		geoEligible, geoVaries := false, false
		for _, g := range byFP {
			if spanLocations(g, meta) < 2 {
				continue
			}
			geoEligible = true
			if _, real := market.RealVariation(quotesOf(g)); real {
				geoVaries = true
				tallyPairVotes(market, g, geoSides, d.acceptGeo)
			}
		}
		if geoEligible {
			geoElig++
			if geoVaries {
				geoHits++
			}
		}

		// Fingerprint: same location, multiple fingerprints. Same
		// location means same display currency, so differing minor
		// units are a real price difference, no filter needed.
		fpEligible, fpVaries := false, false
		for _, g := range byLoc {
			if spanFingerprints(g, meta) < 2 {
				continue
			}
			fpEligible = true
			if unitsDiffer(g) {
				fpVaries = true
				tallyPairVotes(market, g, fpSides, d.acceptFingerprint)
			}
		}
		if fpEligible {
			fpElig++
			if fpVaries {
				fpHits++
			}
		}

		// Temporal/market: consensus of the largest same-fingerprint
		// group of USD vantage points, recorded only when internally
		// uniform — a moving consensus is a global price change, whose
		// shape the classifier below attributes to calendar pricing,
		// market dynamics, or residual temporal effects.
		if units, ok := usdConsensus(byFP, meta); ok {
			consensus = append(consensus, consensusPoint{
				round: rk, units: units, weekday: roundTime.UTC().Weekday(),
			})
		}
	}

	var v ProductVerdict
	if geoElig >= 3 {
		v.Geo.Eligible = true
		v.Geo.Affected = geoHits*2 > geoElig && sidesConsistent(geoSides)
	}
	if fpElig >= 3 {
		v.Fingerprint.Eligible = true
		v.Fingerprint.Affected = fpHits*2 > fpElig && sidesConsistent(fpSides)
	}
	shape := classifyConsensus(consensus)
	if len(consensus) >= 3 {
		v.Temporal.Eligible = true
		v.Temporal.Affected = shape == shapeCalendar || shape == shapeOther
	}
	if marketJudgeable(consensus) {
		v.Competitive.Eligible = true
		v.Competitive.Affected = shape == shapeCompetitive
		v.Demand.Eligible = true
		v.Demand.Affected = shape == shapeDemand
	}
	// Disclosure: a VP that failed extraction in >= MinFailRounds
	// rounds and never succeeded, while another VP succeeded at least
	// as often. Transient 503s re-roll per day and cannot sustain this.
	maxOK := 0
	for _, n := range okRounds {
		if n > maxOK {
			maxOK = n
		}
	}
	if maxOK >= d.opts.MinFailRounds {
		v.Disclosure.Eligible = true
		for vp, fails := range failRounds {
			if fails >= d.opts.MinFailRounds && okRounds[vp] == 0 {
				v.Disclosure.Affected = true
				break
			}
		}
	}
	return v
}

// Evidence applies the flag rule to one family's summed tallies. The
// rule lives here so the full-recompute report and the aggregate-backed
// report cannot diverge on it.
func (d *Detector) Evidence(f shop.StrategyFamily, affected, eligible int) FamilyEvidence {
	e := FamilyEvidence{Family: f, Affected: affected, Eligible: eligible}
	e.Flagged = affected >= d.opts.MinProducts &&
		eligible > 0 && float64(affected)/float64(eligible) >= d.opts.MinFraction
	return e
}

// DetectStrategies attributes a domain's crawl variation to strategy
// families. It reads SourceCrawl observations only — one Product verdict
// per crawled product, summed and flagged by the Detector's rule.
func DetectStrategies(st store.Reader, market *fx.Market, domain string, opts DetectOptions) StrategyReport {
	d := NewDetector(market, opts)
	type familyCount struct{ affected, eligible int }
	counts := map[shop.StrategyFamily]*familyCount{}
	for _, f := range DetectableFamilies {
		counts[f] = &familyCount{}
	}
	for _, obs := range st.DomainGroups(domain, store.SourceCrawl) {
		v := d.Product(obs)
		for _, f := range DetectableFamilies {
			c := v.Of(f)
			if c.Eligible {
				counts[f].eligible++
			}
			if c.Affected {
				counts[f].affected++
			}
		}
	}
	rep := StrategyReport{Domain: domain, Evidence: map[shop.StrategyFamily]FamilyEvidence{}}
	for f, c := range counts {
		rep.Evidence[f] = d.Evidence(f, c.affected, c.eligible)
	}
	return rep
}

// spanLocations counts distinct locations among observations.
func spanLocations(obs []store.Observation, meta map[string]vpMeta) int {
	seen := map[string]bool{}
	for _, o := range obs {
		seen[meta[o.VP].location] = true
	}
	return len(seen)
}

// spanFingerprints counts distinct fingerprints among observations.
func spanFingerprints(obs []store.Observation, meta map[string]vpMeta) int {
	seen := map[string]bool{}
	for _, o := range obs {
		seen[meta[o.VP].fingerprint] = true
	}
	return len(seen)
}

// unitsDiffer reports whether any two observations disagree on minor
// units (callers guarantee a shared display currency).
func unitsDiffer(obs []store.Observation) bool {
	for i := 1; i < len(obs); i++ {
		if obs[i].PriceUnits != obs[0].PriceUnits {
			return true
		}
	}
	return false
}

// sidesConsistent requires at least one pair with a persistent order and
// no pair with a flip-flopping one — the repetition defence of Sec. 2.2,
// shared with the Fig. 3 persistence analysis via pairVote (ratios.go).
func sidesConsistent(sides map[string]*pairVote) bool {
	any := false
	for _, s := range sides {
		if s.first+s.second < 2 {
			continue
		}
		if !s.consistentMajority() {
			return false
		}
		any = true
	}
	return any
}

// usdConsensus returns the uniform price of the largest same-fingerprint
// group of USD vantage points (at least two), or ok=false when no group is
// large enough or a group disagrees internally (which is a location or
// A/B effect, not a temporal one).
func usdConsensus(byFP map[string][]store.Observation, meta map[string]vpMeta) (int64, bool) {
	bestN := 0
	var bestUnits int64
	for _, g := range byFP {
		var usdObs []store.Observation
		for _, o := range g {
			if meta[o.VP].usd && o.Currency == "USD" {
				usdObs = append(usdObs, o)
			}
		}
		if len(usdObs) < 2 || unitsDiffer(usdObs) {
			continue
		}
		if len(usdObs) > bestN {
			bestN = len(usdObs)
			bestUnits = usdObs[0].PriceUnits
		}
	}
	return bestUnits, bestN >= 2
}
