package analysis

import (
	"math"
	"testing"

	"sheriff/internal/store"
)

func TestFitStrategyMultiplicative(t *testing.T) {
	var pts []RatioPoint
	for p := 10.0; p <= 1000; p *= 1.5 {
		pts = append(pts, RatioPoint{MinUSD: p, Ratio: 1.25})
	}
	fit := FitStrategy(pts)
	if fit.Kind != StrategyMultiplicative {
		t.Fatalf("kind = %s", fit.Kind)
	}
	if math.Abs(fit.Factor-1.25) > 0.01 {
		t.Fatalf("factor = %v", fit.Factor)
	}
}

func TestFitStrategyAdditive(t *testing.T) {
	var pts []RatioPoint
	for p := 10.0; p <= 500; p *= 1.3 {
		pts = append(pts, RatioPoint{MinUSD: p, Ratio: 1.05 + 8/p})
	}
	fit := FitStrategy(pts)
	if fit.Kind != StrategyAdditive {
		t.Fatalf("kind = %s (factor %v surcharge %v)", fit.Kind, fit.Factor, fit.Surcharge)
	}
	if math.Abs(fit.Surcharge-8) > 1 {
		t.Fatalf("surcharge = %v", fit.Surcharge)
	}
	if math.Abs(fit.Factor-1.05) > 0.02 {
		t.Fatalf("factor = %v", fit.Factor)
	}
}

func TestFitStrategyNone(t *testing.T) {
	var pts []RatioPoint
	for p := 10.0; p <= 500; p *= 1.3 {
		pts = append(pts, RatioPoint{MinUSD: p, Ratio: 1.004})
	}
	if fit := FitStrategy(pts); fit.Kind != StrategyNone {
		t.Fatalf("kind = %s", fit.Kind)
	}
	if fit := FitStrategy(nil); fit.Kind != StrategyNone || fit.Factor != 1 {
		t.Fatalf("empty fit = %+v", fit)
	}
}

func TestFig6BuildsSeriesPerVP(t *testing.T) {
	st := store.New()
	// 12 products, multiplicative FI at 1.28, UK at 1.12, US baseline.
	for i := 0; i < 12; i++ {
		base := int64(1000 * (i + 1))
		addCrawlRound(st, "photo.com", skuN(i), 0, t0, map[string]vpPrice{
			"us-nyc": {country: "US", units: base},
			"uk-lon": {country: "GB", units: base * 112 / 100},
			"fi-tam": {country: "FI", units: base * 128 / 100},
		})
	}
	series := Fig6(st, market, "photo.com", 5)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	byVP := map[string]VPSeries{}
	for _, s := range series {
		byVP[s.VP] = s
	}
	if fit := byVP["fi-tam"].Fit; fit.Kind != StrategyMultiplicative || math.Abs(fit.Factor-1.28) > 0.01 {
		t.Fatalf("FI fit = %+v", fit)
	}
	if fit := byVP["us-nyc"].Fit; fit.Kind != StrategyNone {
		t.Fatalf("US fit = %+v", fit)
	}
	// Points sorted by price.
	pts := byVP["fi-tam"].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].MinUSD < pts[i-1].MinUSD {
			t.Fatal("points not sorted")
		}
	}
}

func TestFig6AdditiveLocationDetected(t *testing.T) {
	st := store.New()
	// UK pays a flat $8 on top of a 1.05 multiplier; US is the baseline.
	for i := 0; i < 14; i++ {
		baseF := 12.0 * math.Pow(1.45, float64(i)) // $12 .. ~$2000
		base := int64(baseF * 100)
		uk := int64((baseF*1.05 + 8) * 100)
		addCrawlRound(st, "clothes.com", skuN(i), 0, t0, map[string]vpPrice{
			"us-nyc": {country: "US", units: base},
			"uk-lon": {country: "GB", units: uk},
		})
	}
	series := Fig6(st, market, "clothes.com", 5)
	byVP := map[string]VPSeries{}
	for _, s := range series {
		byVP[s.VP] = s
	}
	fit := byVP["uk-lon"].Fit
	if fit.Kind != StrategyAdditive {
		t.Fatalf("UK fit = %+v", fit)
	}
	if math.Abs(fit.Surcharge-8) > 1.5 {
		t.Fatalf("surcharge = %v", fit.Surcharge)
	}
}

func skuN(i int) string {
	return string(rune('A'+i%26)) + "-PRODUCT"
}

func TestClassifyPairRelations(t *testing.T) {
	similar := [][2]float64{{1.0, 1.0}, {1.1, 1.105}, {1.2, 1.2}}
	if got := classifyPair(similar); got != RelSimilar {
		t.Fatalf("similar = %s", got)
	}
	rowD := [][2]float64{{1.0, 1.1}, {1.0, 1.08}, {1.02, 1.15}}
	if got := classifyPair(rowD); got != RelRowDearer {
		t.Fatalf("rowD = %s", got)
	}
	colD := [][2]float64{{1.1, 1.0}, {1.08, 1.0}, {1.15, 1.02}}
	if got := classifyPair(colD); got != RelColDearer {
		t.Fatalf("colD = %s", got)
	}
	mixed := [][2]float64{{1.0, 1.2}, {1.2, 1.0}, {1.0, 1.15}, {1.18, 1.0}}
	if got := classifyPair(mixed); got != RelMixed {
		t.Fatalf("mixed = %s", got)
	}
	if got := classifyPair(nil); got != RelSimilar {
		t.Fatalf("empty = %s", got)
	}
}

func TestFig8CityGrid(t *testing.T) {
	st := store.New()
	// NYC consistently above Chicago; Boston ≈ LA; Lincoln mixed.
	lincolnUp := false
	for i := 0; i < 10; i++ {
		base := int64(2000 + 500*i)
		lin := base
		if lincolnUp {
			lin = base * 106 / 100
		} else {
			lin = base * 96 / 100
		}
		lincolnUp = !lincolnUp
		addCrawlRound(st, "home.com", skuN(i), 0, t0, map[string]vpPrice{
			"us-chi": {country: "US", city: "Chicago", units: base},
			"us-nyc": {country: "US", city: "New York", units: base * 109 / 100},
			"us-bos": {country: "US", city: "Boston", units: base * 102 / 100},
			"us-la":  {country: "US", city: "Los Angeles", units: base * 102 / 100},
			"us-lin": {country: "US", city: "Lincoln", units: lin},
			"fi-tam": {country: "FI", city: "Tampere", units: base * 120 / 100}, // excluded at city level
		})
	}
	grid := Fig8(st, market, "home.com", "city")
	if len(grid.Locations) != 5 {
		t.Fatalf("locations = %v (Finland must be excluded)", grid.Locations)
	}
	cell, ok := grid.Cell("New York", "Chicago")
	if !ok || cell.Relation != RelRowDearer {
		t.Fatalf("NY/Chicago = %+v", cell.Relation)
	}
	cell, _ = grid.Cell("Boston", "Los Angeles")
	if cell.Relation != RelSimilar {
		t.Fatalf("Boston/LA = %s", cell.Relation)
	}
	cell, _ = grid.Cell("Lincoln", "Boston")
	if cell.Relation != RelMixed {
		t.Fatalf("Lincoln/Boston = %s", cell.Relation)
	}
}

func TestFig8CountryGridDedupsVPs(t *testing.T) {
	st := store.New()
	addCrawlRound(st, "amazon.sim", "P", 0, t0, map[string]vpPrice{
		"us-bos": {country: "US", city: "Boston", units: 10000},
		"us-nyc": {country: "US", city: "New York", units: 10000},
		"fi-tam": {country: "FI", city: "Tampere", units: 12500},
		"de-ber": {country: "DE", city: "Berlin", units: 11200},
	})
	grid := Fig8(st, market, "amazon.sim", "country")
	if len(grid.Locations) != 3 {
		t.Fatalf("locations = %v", grid.Locations)
	}
	cell, ok := grid.Cell("FI", "US")
	if !ok || cell.Relation != RelRowDearer {
		t.Fatalf("FI/US = %+v", cell)
	}
}

func TestFig8EmptyDomain(t *testing.T) {
	grid := Fig8(store.New(), market, "ghost.com", "city")
	if len(grid.Locations) != 0 {
		t.Fatalf("locations = %v", grid.Locations)
	}
	if _, ok := grid.Cell("A", "B"); ok {
		t.Fatal("cell on empty grid")
	}
}
