package analysis

import (
	"testing"
	"time"

	"sheriff/internal/fx"
	"sheriff/internal/store"
)

// obsAt builds one observation for the ratio tables; an empty currency
// marks a failed extraction (OK=false).
func obsAt(units int64, currency string, day time.Time) store.Observation {
	o := store.Observation{
		Domain: "shop.example", SKU: "SKU-1", VP: "us-nyc",
		PriceUnits: units, Currency: currency, Time: day,
		Round: -1, Source: store.SourceCrawl, OK: currency != "",
	}
	return o
}

// TestGroupRatioEdges pins the currency filter's behaviour on the
// degenerate groups the fold path and the full path must both handle:
// empty, single-observation, unknown-currency, zero-price and
// mixed-currency groups.
func TestGroupRatioEdges(t *testing.T) {
	market := fx.NewMarket(1)
	day := time.Date(2013, 2, 1, 12, 0, 0, 0, time.UTC)

	cases := []struct {
		name string
		obs  []store.Observation
		// wantVaries is the expected real-variation verdict; wantOne
		// additionally pins the ratio to exactly 1 (the no-evidence value).
		wantVaries bool
		wantOne    bool
	}{
		{
			name: "empty group", obs: nil,
			wantVaries: false, wantOne: true,
		},
		{
			name: "single observation",
			obs: []store.Observation{
				obsAt(4999, "USD", day),
			},
			wantVaries: false, wantOne: true,
		},
		{
			name: "failed extractions only",
			obs: []store.Observation{
				obsAt(0, "", day), obsAt(0, "", day),
			},
			wantVaries: false, wantOne: true,
		},
		{
			name: "unknown currency drops to single quote",
			obs: []store.Observation{
				obsAt(4999, "USD", day),
				obsAt(9999, "XXX", day), // no such ISO code: filtered, not converted
			},
			wantVaries: false, wantOne: true,
		},
		{
			name: "identical prices do not vary",
			obs: []store.Observation{
				obsAt(4999, "USD", day), obsAt(4999, "USD", day),
			},
			wantVaries: false, wantOne: true,
		},
		{
			name: "zero-price rows yield no positive floor",
			obs: []store.Observation{
				obsAt(0, "USD", day), obsAt(0, "USD", day),
			},
			wantVaries: false, wantOne: true,
		},
		{
			name: "zero against a real price is extreme variation",
			// The zero row's half-minor-unit slack keeps the floor positive
			// (no divide-toward-infinity), so a free item against $99.99 is
			// reported as variation — enormous, but finite and real.
			obs: []store.Observation{
				obsAt(0, "USD", day), obsAt(9999, "USD", day),
			},
			wantVaries: true,
		},
		{
			name: "clear same-currency variation",
			obs: []store.Observation{
				obsAt(4999, "USD", day), obsAt(9999, "USD", day),
			},
			wantVaries: true,
		},
		{
			name: "mixed currency near parity is absorbed by the fixing band",
			// ~50 USD vs ~50 EUR-cents-scaled to land inside the day's
			// low/high fixing slack: the conservative filter must not call
			// exchange-rate noise discrimination.
			obs: []store.Observation{
				obsAt(4999, "USD", day),
				obsAt(localUnits(market, 4999, "EUR", day), "EUR", day),
			},
			wantVaries: false, wantOne: true,
		},
		{
			name: "mixed currency with a genuine gap survives the filter",
			obs: []store.Observation{
				obsAt(4999, "USD", day),
				obsAt(2*localUnits(market, 4999, "EUR", day), "EUR", day),
			},
			wantVaries: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ratio, varies := GroupRatio(market, tc.obs)
			if varies != tc.wantVaries {
				t.Fatalf("GroupRatio varies = %v, want %v (ratio %v)", varies, tc.wantVaries, ratio)
			}
			if tc.wantOne && ratio != 1 {
				t.Fatalf("GroupRatio ratio = %v, want exactly 1", ratio)
			}
			if tc.wantVaries && ratio <= 1 {
				t.Fatalf("GroupRatio ratio = %v, want > 1 for real variation", ratio)
			}
		})
	}
}

// localUnits converts minor units of USD into the equivalent minor units
// of another currency at the day's mid fixing — the "same price, shown
// in the visitor's currency" case.
func localUnits(market *fx.Market, usdUnits int64, code string, day time.Time) int64 {
	a, _ := obsAt(usdUnits, "USD", day).Amount()
	ta, _ := obsAt(0, code, day).Amount()
	return market.Convert(a, ta.Currency, day).Units
}
