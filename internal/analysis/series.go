package analysis

import "time"

// This file is the consensus-series classifier: given the per-round
// uniform price of the same-fingerprint USD vantage-point group (the
// series every client saw identically), it decides WHY the price moved.
// The fleet's structure already proved the move is not discrimination —
// every location and fingerprint saw the same number — so what remains
// is to attribute the movement: calendar pricing (the temporal family's
// weekday strategy), competitive repricing (held levels punctuated by
// jumps, internal/market's leader-follower/contrarian/sale dynamics),
// demand scarcity pricing (strict daily climbs broken by restock
// drops), or residual temporal effects (intra-day drift, anything
// unclassified). Separation rests on margins the simulation honours:
//
//   - weekday pricing repeats exactly at lag 7; market cycles default
//     off the week (sale period 5, restock 4–6 days) and the leader's
//     walk redraws levels, so only calendar pricing survives the
//     group-by-weekday uniformity test;
//   - competitive levels are held ≥2 days with every reprice a ≥3%
//     jump; drift moves most days (runs of 1) and by ≤~1% per day;
//   - demand moves the price EVERY day (≥~2% climbs, one ≥4% restock
//     drop per cycle); no other scenario moves a consensus daily by
//     that much.
//
// Verdict thresholds (minCalendarRounds, minMarketRounds) are set so a
// short crawl — the historical 7-round default — never claims a market
// shape: dynamics stay in the temporal bucket until the series is long
// enough to judge, which keeps short-campaign verdicts stable.

// consensusPoint is one round's consensus price with the context the
// classifier keys on: the crawl round (adjacency) and the round's UTC
// weekday (calendar structure).
type consensusPoint struct {
	round   int
	units   int64
	weekday time.Weekday
}

// seriesShape is the classifier's verdict on a consensus series.
type seriesShape int

const (
	// shapeFlat: the consensus never moved (or is too short to say).
	shapeFlat seriesShape = iota
	// shapeCalendar: weekday-periodic — the temporal family's weekday
	// pricing.
	shapeCalendar
	// shapeCompetitive: held price levels separated by repricing jumps —
	// competitive market dynamics.
	shapeCompetitive
	// shapeDemand: strict daily movement with restock drops —
	// demand/inventory dynamics.
	shapeDemand
	// shapeOther: the consensus moved but matches no known dynamic —
	// drift and friends, attributed to the temporal family.
	shapeOther
)

// Classifier thresholds.
const (
	// minCalendarRounds is the shortest series that can prove weekday
	// periodicity: at least one weekday must repeat with ≥1 spare round,
	// i.e. better part of two weeks of dailies.
	minCalendarRounds = 8
	// minMarketRounds is the shortest series the market-shape tests
	// judge. Below it dynamics are reported as temporal movement — the
	// pre-market behaviour, which keeps short-crawl verdicts stable.
	minMarketRounds = 10
	// minCompetitiveStep is the smallest relative reprice jump the
	// competitive test demands; drift steps stay near 1% per day.
	minCompetitiveStep = 0.03
	// minRestockDrop is the smallest relative one-day price drop the
	// demand test reads as a restock.
	minRestockDrop = 0.04
)

// marketJudgeable reports whether a consensus series is long and dense
// enough for the market-shape tests: at least minMarketRounds points
// over strictly consecutive rounds (daily cadence, no gaps — run
// lengths and daily steps are meaningless across holes).
func marketJudgeable(pts []consensusPoint) bool {
	if len(pts) < minMarketRounds {
		return false
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].round != pts[i-1].round+1 {
			return false
		}
	}
	return true
}

// classifyConsensus attributes a consensus series' movement to a shape.
// Precedence is load-bearing: calendar pricing is tested first because
// a weekend factor also produces held levels with ≥3% jumps — a series
// that repeats exactly by weekday is weekday pricing no matter what
// else it resembles.
func classifyConsensus(pts []consensusPoint) seriesShape {
	moved := false
	for i := 1; i < len(pts); i++ {
		if pts[i].units != pts[0].units {
			moved = true
			break
		}
	}
	if !moved {
		return shapeFlat
	}
	if weekdayPeriodic(pts) {
		return shapeCalendar
	}
	if marketJudgeable(pts) {
		switch {
		case competitiveShape(pts):
			return shapeCompetitive
		case demandShape(pts):
			return shapeDemand
		}
	}
	return shapeOther
}

// weekdayPeriodic reports whether the series is explained entirely by
// the calendar: every observation of a given UTC weekday shows the same
// price, at least one weekday was observed twice (the periodicity is
// proven, not assumed), and at least two weekdays disagree (there is a
// weekday effect at all).
func weekdayPeriodic(pts []consensusPoint) bool {
	if len(pts) < minCalendarRounds {
		return false
	}
	price := map[time.Weekday]int64{}
	seen := map[time.Weekday]int{}
	for _, p := range pts {
		if u, ok := price[p.weekday]; ok && u != p.units {
			return false
		}
		price[p.weekday] = p.units
		seen[p.weekday]++
	}
	repeated := false
	for _, n := range seen {
		if n >= 2 {
			repeated = true
			break
		}
	}
	if !repeated {
		return false
	}
	distinct := map[int64]bool{}
	for _, u := range price {
		distinct[u] = true
	}
	return len(distinct) >= 2
}

// competitiveShape matches the repricing pattern of a competitive
// seller: every interior point sits in a held run of ≥2 consecutive
// days (sellers hold a level between reprices; edge points are exempt
// because the observation window truncates their runs), and at least
// one day-over-day reprice jumps ≥ minCompetitiveStep. Drift fails the
// run test (it moves most days) and the jump test (~1%/day); demand
// fails the run test (it moves every day).
func competitiveShape(pts []consensusPoint) bool {
	for i := 1; i < len(pts)-1; i++ {
		if pts[i].units != pts[i-1].units && pts[i].units != pts[i+1].units {
			return false
		}
	}
	return maxAbsStep(pts) >= minCompetitiveStep
}

// demandShape matches scarcity pricing: the consensus moves EVERY day
// (daily sales keep depleting stock), climbs at least twice, and at
// least one drop of ≥ minRestockDrop marks a restock. Drift moves most
// days but never drops that hard in one day; competitive holds levels.
func demandShape(pts []consensusPoint) bool {
	rises, restocked := 0, false
	for i := 1; i < len(pts); i++ {
		prev, cur := pts[i-1].units, pts[i].units
		if cur == prev {
			return false
		}
		if cur > prev {
			rises++
			continue
		}
		if rel := float64(prev-cur) / float64(prev); rel >= minRestockDrop {
			restocked = true
		}
	}
	return rises >= 2 && restocked
}

// maxAbsStep is the largest relative day-over-day move in the series.
func maxAbsStep(pts []consensusPoint) float64 {
	maxRel := 0.0
	for i := 1; i < len(pts); i++ {
		prev := float64(pts[i-1].units)
		if prev <= 0 {
			continue
		}
		rel := (float64(pts[i].units) - prev) / prev
		if rel < 0 {
			rel = -rel
		}
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}
