package analysis

import (
	"math"
	"sort"

	"sheriff/internal/fx"
	"sheriff/internal/store"
)

// StrategyKind classifies how a retailer prices a location relative to the
// cheapest location (Fig. 6's reading).
type StrategyKind string

// Strategy kinds.
const (
	// StrategyNone: the location tracks the minimum (ratio ≈ 1).
	StrategyNone StrategyKind = "none"
	// StrategyMultiplicative: a constant ratio across the price range —
	// the parallel horizontal lines of Fig. 6(a).
	StrategyMultiplicative StrategyKind = "multiplicative"
	// StrategyAdditive: a flat surcharge whose relative effect fades with
	// price — the converging curve of Fig. 6(b).
	StrategyAdditive StrategyKind = "additive"
)

// VPSeries is one vantage point's scatter in a Fig. 6-style plot.
type VPSeries struct {
	// VP is the vantage point ID; Label its display name.
	VP, Label string
	// Points are (min price, ratio to min) pairs in ascending price order.
	Points []RatioPoint
	// Fit is the fitted pricing strategy for this VP.
	Fit StrategyFit
}

// RatioPoint is one dot: the product's minimum USD price across locations
// and this location's price ratio to that minimum.
type RatioPoint struct {
	MinUSD float64
	Ratio  float64
}

// StrategyFit is the result of fitting the two candidate models
// r(p) = a (multiplicative) and r(p) = b + c/p (additive surcharge c on
// top of multiplier b) to a VP's ratio-vs-price scatter.
type StrategyFit struct {
	Kind StrategyKind
	// Factor is the multiplicative level: a for multiplicative fits,
	// b for additive fits.
	Factor float64
	// Surcharge is the additive USD term c (0 for multiplicative fits).
	Surcharge float64
	// RMSE is the root-mean-square error of the chosen model.
	RMSE float64
}

// Fig6 builds per-vantage-point ratio series and strategy fits for one
// crawled domain. Only vantage points with at least minPoints points are
// returned.
func Fig6(st store.Reader, market *fx.Market, domain string, minPoints int) []VPSeries {
	pointsByVP := map[string][]RatioPoint{}
	labels := map[string]string{}
	for _, obs := range st.DomainGroups(domain, store.SourceCrawl) {
		for _, group := range byRound(obs) {
			minUSD := -1.0
			usdByVP := map[string]float64{}
			for _, o := range group {
				if !o.OK {
					continue
				}
				if usd, ok := usdOf(market, o); ok {
					usdByVP[o.VP] = usd
					labels[o.VP] = o.VPLabel
					if minUSD < 0 || usd < minUSD {
						minUSD = usd
					}
				}
			}
			if minUSD <= 0 || len(usdByVP) < 2 {
				continue
			}
			for vp, usd := range usdByVP {
				pointsByVP[vp] = append(pointsByVP[vp], RatioPoint{MinUSD: minUSD, Ratio: usd / minUSD})
			}
		}
	}
	var out []VPSeries
	for vp, pts := range pointsByVP {
		if len(pts) < minPoints {
			continue
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].MinUSD < pts[j].MinUSD })
		out = append(out, VPSeries{VP: vp, Label: labels[vp], Points: pts, Fit: FitStrategy(pts)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VP < out[j].VP })
	return out
}

// FitStrategy fits the multiplicative and additive models to a scatter and
// picks the better one. A flat fit with factor within noiseBand of 1 is
// classified as StrategyNone.
func FitStrategy(pts []RatioPoint) StrategyFit {
	if len(pts) == 0 {
		return StrategyFit{Kind: StrategyNone, Factor: 1}
	}
	// Model A: r = a. Least squares: a = mean(r).
	var sum float64
	for _, p := range pts {
		sum += p.Ratio
	}
	a := sum / float64(len(pts))
	sseA := 0.0
	for _, p := range pts {
		d := p.Ratio - a
		sseA += d * d
	}

	// Model B: r = b + c/p. Linear least squares in x = 1/p.
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := 1 / p.MinUSD
		sx += x
		sy += p.Ratio
		sxx += x * x
		sxy += x * p.Ratio
	}
	n := float64(len(pts))
	den := n*sxx - sx*sx
	var b, c, sseB float64
	if den == 0 {
		b, c, sseB = a, 0, sseA
	} else {
		c = (n*sxy - sx*sy) / den
		b = (sy - c*sx) / n
		for _, p := range pts {
			d := p.Ratio - (b + c/p.MinUSD)
			sseB += d * d
		}
	}

	const noiseBand = 0.02
	// Prefer the simpler multiplicative model unless the additive term
	// buys a clearly better fit AND is economically meaningful.
	betterAdditive := sseB < sseA*0.5 && c > 0.5
	if betterAdditive {
		return StrategyFit{
			Kind: StrategyAdditive, Factor: b, Surcharge: c,
			RMSE: math.Sqrt(sseB / n),
		}
	}
	kind := StrategyMultiplicative
	if math.Abs(a-1) <= noiseBand {
		kind = StrategyNone
	}
	return StrategyFit{Kind: kind, Factor: a, RMSE: math.Sqrt(sseA / n)}
}

// Relation classifies how two locations price the same products
// (Fig. 8's pairwise subplots).
type Relation string

// Relations between two locations.
const (
	// RelSimilar: points hug the diagonal.
	RelSimilar Relation = "similar"
	// RelRowDearer: the row location is consistently more expensive.
	RelRowDearer Relation = "row-dearer"
	// RelColDearer: the column location is consistently more expensive.
	RelColDearer Relation = "col-dearer"
	// RelMixed: some products dearer on one side, some on the other.
	RelMixed Relation = "mixed"
)

// PairCell is one subplot of a Fig. 8 grid.
type PairCell struct {
	// Row and Col are location names.
	Row, Col string
	// Points are (col ratio, row ratio) pairs.
	Points [][2]float64
	// Relation classifies the cloud.
	Relation Relation
}

// Fig8Grid is the full pairwise comparison for a domain.
type Fig8Grid struct {
	Domain    string
	Locations []string
	// Cells indexed [row][col]; the diagonal holds empty cells.
	Cells [][]PairCell
}

// Fig8 builds the pairwise location grid for a domain. Level selects the
// paper's two granularities: "city" compares the six US cities
// (homedepot), "country" compares one representative VP per country
// (amazon, killah).
func Fig8(st store.Reader, market *fx.Market, domain, level string) Fig8Grid {
	// Collect per-(product, round) USD prices by location name.
	type groupPrices map[string]float64
	var groups []groupPrices
	for _, obs := range st.DomainGroups(domain, store.SourceCrawl) {
		for _, group := range byRound(obs) {
			gp := groupPrices{}
			minUSD := -1.0
			for _, o := range group {
				if !o.OK {
					continue
				}
				name, ok := locationName(o, level)
				if !ok {
					continue
				}
				usd, okc := usdOf(market, o)
				if !okc {
					continue
				}
				if _, dup := gp[name]; dup {
					continue // country level: first VP of the country wins
				}
				gp[name] = usd
				if minUSD < 0 || usd < minUSD {
					minUSD = usd
				}
			}
			if len(gp) >= 2 && minUSD > 0 {
				for name, usd := range gp {
					gp[name] = usd / minUSD
				}
				groups = append(groups, gp)
			}
		}
	}
	// Stable location order.
	locSet := map[string]bool{}
	for _, gp := range groups {
		for name := range gp {
			locSet[name] = true
		}
	}
	locations := make([]string, 0, len(locSet))
	for name := range locSet {
		locations = append(locations, name)
	}
	sort.Strings(locations)

	grid := Fig8Grid{Domain: domain, Locations: locations}
	grid.Cells = make([][]PairCell, len(locations))
	for i, row := range locations {
		grid.Cells[i] = make([]PairCell, len(locations))
		for j, col := range locations {
			cell := PairCell{Row: row, Col: col}
			if i != j {
				for _, gp := range groups {
					rv, okR := gp[row]
					cv, okC := gp[col]
					if okR && okC {
						cell.Points = append(cell.Points, [2]float64{cv, rv})
					}
				}
				cell.Relation = classifyPair(cell.Points)
			}
			grid.Cells[i][j] = cell
		}
	}
	return grid
}

// locationName maps an observation to its grid label under a level.
func locationName(o store.Observation, level string) (string, bool) {
	switch level {
	case "city":
		if o.Country != "US" || o.City == "" {
			return "", false
		}
		return o.City, true
	case "country":
		// One representative VP per country: skip the extra Spanish
		// browser configs and the extra US cities deterministically by
		// preferring the lexically-first VP ID per country; the caller
		// dedupes by name, so make the representative stable instead.
		return o.Country, true
	default:
		return o.VPLabel, true
	}
}

// classifyPair decides the relation of a point cloud around the diagonal.
// Points on the diagonal (within tol) are products priced the same at both
// locations; the relation is read from the points that differ, so that a
// retailer which varies only half its catalog still shows "New York dearer
// than Chicago" rather than drowning in diagonal mass — which is how the
// paper reads its Fig. 8 subplots.
func classifyPair(points [][2]float64) Relation {
	if len(points) == 0 {
		return RelSimilar
	}
	const tol = 0.015 // 1.5% band counts as "same price"
	similar, rowD, colD := 0, 0, 0
	for _, p := range points {
		col, row := p[0], p[1]
		base := math.Min(col, row)
		if base <= 0 {
			continue
		}
		switch {
		case math.Abs(row-col)/base <= tol:
			similar++
		case row > col:
			rowD++
		default:
			colD++
		}
	}
	n := similar + rowD + colD
	diff := rowD + colD
	// Below 12% differing points, what differs is A/B-test residue, not a
	// location policy: the locations price alike.
	if n == 0 || float64(diff)/float64(n) < 0.12 {
		return RelSimilar
	}
	share := float64(rowD) / float64(diff)
	switch {
	case share >= 0.9:
		return RelRowDearer
	case share <= 0.1:
		return RelColDearer
	default:
		return RelMixed
	}
}

// Cell returns the grid cell for (row, col) names, if present.
func (g Fig8Grid) Cell(row, col string) (PairCell, bool) {
	ri, ci := -1, -1
	for i, name := range g.Locations {
		if name == row {
			ri = i
		}
		if name == col {
			ci = i
		}
	}
	if ri < 0 || ci < 0 {
		return PairCell{}, false
	}
	return g.Cells[ri][ci], true
}
