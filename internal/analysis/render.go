package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file renders figures as ASCII plots so that cmd/analyze and
// cmd/experiments output can be eyeballed against the paper's figures:
// scatter plots for Fig. 5/6, boxplot strips for Fig. 2/4/7/9, and the
// Fig. 10 per-account series.

// Scatter renders points as an ASCII scatter plot with a log-scaled x
// axis (the paper's Fig. 5/6 use log-price axes). Width and height are
// the plot body dimensions in characters.
type Scatter struct {
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// LogX log-scales the x axis.
	LogX bool
	// Width and Height are the plot body size (default 72×20).
	Width, Height int

	series []scatterSeries
}

type scatterSeries struct {
	mark   byte
	label  string
	points [][2]float64
}

// AddSeries adds one point set drawn with the given mark.
func (s *Scatter) AddSeries(label string, mark byte, points [][2]float64) {
	s.series = append(s.series, scatterSeries{mark: mark, label: label, points: points})
}

// Render draws the plot.
func (s *Scatter) Render() string {
	w, h := s.Width, s.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, se := range s.series {
		for _, p := range se.points {
			x := p[0]
			if s.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
			total++
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", s.Title)
	}
	if total == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, se := range s.series {
		for _, p := range se.points {
			x := p[0]
			if s.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			col := int((x - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((p[1]-minY)/(maxY-minY)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = se.mark
			}
		}
	}
	// y-axis labels on first/last rows.
	for i, row := range grid {
		yVal := maxY - (maxY-minY)*float64(i)/float64(h-1)
		fmt.Fprintf(&b, "%8.2f |%s|\n", yVal, string(row))
	}
	lo, hi := minX, maxX
	if s.LogX {
		lo, hi = math.Pow(10, minX), math.Pow(10, maxX)
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%8s  %-*.4g%*.4g\n", "", w/2, lo, w-w/2, hi)
	if s.XLabel != "" || s.YLabel != "" {
		fmt.Fprintf(&b, "%8s  x: %s   y: %s\n", "", s.XLabel, s.YLabel)
	}
	var legend []string
	for _, se := range s.series {
		if se.label != "" {
			legend = append(legend, fmt.Sprintf("%c=%s", se.mark, se.label))
		}
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%8s  %s\n", "", strings.Join(legend, "  "))
	}
	return b.String()
}

// RenderBoxStrip renders labeled boxplots as horizontal strips over a
// shared axis:
//
//	domain-a   |----[==|==]-------|      min [q1 med q3] max
//
// Rows render in the order given.
func RenderBoxStrip(title string, rows []DomainBox, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	if len(rows) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, r := range rows {
		if r.Box.N == 0 {
			continue
		}
		minV = math.Min(minV, r.Box.Min)
		maxV = math.Max(maxV, r.Box.Max)
		if len(r.Domain) > labelW {
			labelW = len(r.Domain)
		}
	}
	if math.IsInf(minV, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxV == minV {
		maxV = minV + 1e-9
	}
	col := func(v float64) int {
		c := int((v - minV) / (maxV - minV) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, r := range rows {
		if r.Box.N == 0 {
			fmt.Fprintf(&b, "%-*s  (no data)\n", labelW, r.Domain)
			continue
		}
		strip := []byte(strings.Repeat(" ", width))
		for i := col(r.Box.Min); i <= col(r.Box.Max); i++ {
			strip[i] = '-'
		}
		for i := col(r.Box.Q1); i <= col(r.Box.Q3); i++ {
			strip[i] = '='
		}
		strip[col(r.Box.Min)] = '|'
		strip[col(r.Box.Max)] = '|'
		strip[col(r.Box.Median)] = 'O'
		fmt.Fprintf(&b, "%-*s  %s  med=%.3f n=%d\n", labelW, r.Domain, strip, r.Box.Median, r.Box.N)
	}
	fmt.Fprintf(&b, "%-*s  %-*.3f%*.3f\n", labelW, "", width/2, minV, width-width/2, maxV)
	return b.String()
}

// LocationBoxesToDomainBoxes adapts Fig. 7 rows for RenderBoxStrip.
func LocationBoxesToDomainBoxes(rows []LocationBox) []DomainBox {
	out := make([]DomainBox, 0, len(rows))
	for _, r := range rows {
		out = append(out, DomainBox{Domain: r.Label, Box: r.Box})
	}
	return out
}

// RenderFig5 draws the ratio-vs-price scatter with its band envelope.
func RenderFig5(points []PricePoint) string {
	sc := Scatter{
		Title:  "Fig. 5 — maximal ratio of price difference per product price (all stores)",
		XLabel: "minimal price of the product ($, log)",
		YLabel: "maximal ratio",
		LogX:   true,
	}
	pts := make([][2]float64, 0, len(points))
	for _, p := range points {
		pts = append(pts, [2]float64{p.MinUSD, p.MaxRatio})
	}
	sc.AddSeries("product", '*', pts)
	var b strings.Builder
	b.WriteString(sc.Render())
	for _, band := range EnvelopeOf(points) {
		fmt.Fprintf(&b, "  %-20s max x%.2f  (%d products)\n", band.Band, band.MaxRatio, band.N)
	}
	return b.String()
}

// fig6Marks assigns stable plot marks to vantage points.
var fig6Marks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '1', '2', '3', '4', '5', '6'}

// RenderFig6 draws one retailer's ratio-vs-price series per vantage point
// (the paper plots New York, UK and Finland; pass the VP IDs to include).
func RenderFig6(domain string, series []VPSeries, includeVPs []string) string {
	sc := Scatter{
		Title:  "Fig. 6 — ratio of price difference per product price, " + domain,
		XLabel: "minimal price of the product ($, log)",
		YLabel: "ratio to min",
		LogX:   true,
	}
	include := map[string]bool{}
	for _, vp := range includeVPs {
		include[vp] = true
	}
	mi := 0
	for _, s := range series {
		if len(include) > 0 && !include[s.VP] {
			continue
		}
		pts := make([][2]float64, 0, len(s.Points))
		for _, p := range s.Points {
			pts = append(pts, [2]float64{p.MinUSD, p.Ratio})
		}
		mark := fig6Marks[mi%len(fig6Marks)]
		mi++
		sc.AddSeries(s.Label, mark, pts)
	}
	return sc.Render()
}

// RenderFig10 draws the login-experiment series: products on x, USD price
// on y, one mark per account.
func RenderFig10(ls LoginSeries) string {
	sc := Scatter{
		Title:  "Fig. 10 — the impact of login on ebook prices",
		XLabel: "product #",
		YLabel: "price ($)",
	}
	accounts := append([]string{}, ls.Accounts...)
	sort.Strings(accounts)
	mi := 0
	for _, acc := range accounts {
		label := acc
		if label == "" {
			label = "w/o login"
		}
		pts := make([][2]float64, 0, len(ls.SKUs))
		for i := range ls.SKUs {
			if v := ls.USD[acc][i]; v > 0 {
				pts = append(pts, [2]float64{float64(i + 1), v})
			}
		}
		mark := fig6Marks[mi%len(fig6Marks)]
		mi++
		sc.AddSeries(label, mark, pts)
	}
	return sc.Render()
}
