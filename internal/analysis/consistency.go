package analysis

import (
	"sort"

	"sheriff/internal/fx"
	"sheriff/internal/store"
)

// The paper's core credibility claim (Sec. 1, Sec. 6) is that crowd
// findings are "consistent over time and across different locations" and
// that "the results are repeatable": a domain the crowd flags should be
// confirmed when crawled systematically. CompareCampaigns measures that
// agreement on a dataset containing both campaigns.

// CampaignAgreement summarizes crowd-vs-crawl consistency.
type CampaignAgreement struct {
	// CrowdFlagged lists domains the crowd found varying (Fig. 1 rows).
	CrowdFlagged []string
	// CrawlConfirmed lists crowd-flagged domains whose crawl extent is
	// positive (the crawl reproduced the crowd's finding).
	CrawlConfirmed []string
	// CrawlRefuted lists crowd-flagged domains that were crawled and
	// showed no persistent variation at all.
	CrawlRefuted []string
	// NotCrawled lists crowd-flagged domains absent from the crawl (the
	// crowd-only extras of Fig. 1).
	NotCrawled []string
	// MedianRatioDelta is the median absolute difference between a
	// domain's crowd-observed and crawl-observed median ratios, over
	// confirmed domains — how quantitatively repeatable the magnitude is.
	MedianRatioDelta float64
}

// CompareCampaigns computes the agreement between the crowdsourced and
// crawled findings in one dataset.
func CompareCampaigns(st store.Reader, market *fx.Market) CampaignAgreement {
	agg := CampaignAgreement{}

	crowdRatios := map[string]float64{}
	for _, db := range Fig2(st, market) {
		if db.Box.N > 0 {
			crowdRatios[db.Domain] = db.Box.Median
		}
	}
	for _, dc := range Fig1(st, market) {
		if dc.WithVariation > 0 {
			agg.CrowdFlagged = append(agg.CrowdFlagged, dc.Domain)
		}
	}
	sort.Strings(agg.CrowdFlagged)

	crawlExtent := map[string]float64{}
	for _, de := range Fig3(st, market) {
		crawlExtent[de.Domain] = de.Extent
	}
	crawlRatios := map[string]float64{}
	for _, db := range Fig4(st, market) {
		if db.Box.N > 0 {
			crawlRatios[db.Domain] = db.Box.Median
		}
	}

	var deltas []float64
	for _, d := range agg.CrowdFlagged {
		extent, crawled := crawlExtent[d]
		switch {
		case !crawled:
			agg.NotCrawled = append(agg.NotCrawled, d)
		case extent > 0:
			agg.CrawlConfirmed = append(agg.CrawlConfirmed, d)
			if cr, ok := crowdRatios[d]; ok {
				if cl, ok2 := crawlRatios[d]; ok2 {
					delta := cr - cl
					if delta < 0 {
						delta = -delta
					}
					deltas = append(deltas, delta)
				}
			}
		default:
			agg.CrawlRefuted = append(agg.CrawlRefuted, d)
		}
	}
	if len(deltas) > 0 {
		agg.MedianRatioDelta = Median(deltas)
	}
	return agg
}

// ConfirmationRate is the fraction of crowd-flagged, crawled domains the
// crawl confirmed (1.0 when nothing was both flagged and crawled).
func (a CampaignAgreement) ConfirmationRate() float64 {
	total := len(a.CrawlConfirmed) + len(a.CrawlRefuted)
	if total == 0 {
		return 1
	}
	return float64(len(a.CrawlConfirmed)) / float64(total)
}
