// Tests of the public facade: everything a downstream user touches goes
// through package sheriff, so this file doubles as executable
// documentation of the public API.
package sheriff_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sheriff"
	"sheriff/internal/geo"
	"sheriff/internal/money"
	"sheriff/internal/shop"
)

func TestPublicAPIWorldAndCheck(t *testing.T) {
	w := sheriff.NewWorld(sheriff.WorldOptions{Seed: 42, LongTail: 6})
	if len(w.Crawled) != 21 {
		t.Fatalf("crawled = %d", len(w.Crawled))
	}
	if got := len(sheriff.VantagePoints()); got != 14 {
		t.Fatalf("vantage points = %d", got)
	}

	// A check through the public facade.
	r := w.Retailers["www.digitalrev.com"]
	p := r.Catalog().Products()[0]
	loc, err := geo.LocationOf("US", "Boston")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := geo.AddrFor(loc, 61)
	if err != nil {
		t.Fatal(err)
	}
	amt := r.DisplayPrice(p, shop.Visit{Loc: loc, Time: w.Clock.Now(), IP: addr.String()})
	res, err := w.Backend.Check(sheriff.CheckRequest{
		URL:       "http://www.digitalrev.com/product/" + p.SKU,
		Highlight: money.Format(amt, amt.Currency.Style()),
		UserAddr:  addr,
		UserID:    "api-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Varies {
		t.Fatalf("digitalrev should vary: %+v", res)
	}
	if len(res.Prices) != 14 {
		t.Fatalf("prices = %d", len(res.Prices))
	}
}

func TestPublicAPIPipelineAndFigures(t *testing.T) {
	w := sheriff.NewWorld(sheriff.WorldOptions{Seed: 8, LongTail: 6})
	crowdRep, err := w.RunCrowd(sheriff.CrowdOptions{Users: 20, Requests: 40, Span: 5 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	domains := []string{"www.digitalrev.com", "www.energie.it", "www.homedepot.com"}
	if err := w.EnsureAnchors(domains); err != nil {
		t.Fatal(err)
	}
	crawlRep, err := w.RunCrawl(sheriff.CrawlOptions{Domains: domains, MaxProducts: 6, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if crawlRep.Extracted == 0 {
		t.Fatal("nothing extracted")
	}

	// Figure accessors return data through re-exported types.
	var _ []sheriff.DomainCount = w.Fig1()
	var _ []sheriff.DomainExtent = w.Fig3()
	var _ []sheriff.DomainBox = w.Fig4()
	points := w.Fig5()
	var _ []sheriff.Fig5EnvelopeBand = toBands(sheriff.EnvelopeOf(points))
	var _ []sheriff.LocationBox = w.Fig7()
	grid := w.Fig8("www.homedepot.com", "city")
	if len(grid.Locations) == 0 {
		t.Fatal("empty grid")
	}
	report := w.Report(crowdRep, crawlRep)
	if !strings.Contains(report, "Fig. 3") {
		t.Fatal("report incomplete")
	}

	// Dataset persistence through the facade.
	var buf bytes.Buffer
	if err := w.Store.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sheriff.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != w.Store.Len() {
		t.Fatalf("dataset round trip: %d != %d", back.Len(), w.Store.Len())
	}
}

// toBands exists to type-check EnvelopeOf's result against the alias.
func toBands(in []sheriff.Fig5EnvelopeBand) []sheriff.Fig5EnvelopeBand { return in }

func TestPublicAPISegmentDetector(t *testing.T) {
	w := sheriff.NewWorld(sheriff.WorldOptions{
		Seed: 9, LongTail: 6, SegmentPricingDomain: "www.guess.eu",
	})
	findings, err := w.RunSegmentDetector([]string{"www.guess.eu"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !findings[0].Flagged {
		t.Fatal("segment pricer not flagged through public API")
	}
}
