// Benchmark harness: one benchmark per paper table/figure (regenerating
// the exact rows/series the paper reports, against a fixed campaign
// dataset) plus micro-benchmarks for every pipeline stage and the
// ablation baselines called out in DESIGN.md §4.
//
// Run with: go test -bench=. -benchmem
package sheriff_test

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sheriff"
	"sheriff/internal/analysis"
	"sheriff/internal/api"
	"sheriff/internal/extract"
	"sheriff/internal/fx"
	"sheriff/internal/geo"
	"sheriff/internal/htmlx"
	"sheriff/internal/money"
	"sheriff/internal/shop"
	"sheriff/internal/store"
)

// fixture is the shared benchmark dataset: a reduced-scale but complete
// run of both campaigns plus the login experiment. Built once.
type fixture struct {
	world *sheriff.World
	page  string      // a representative product page
	doc   *htmlx.Node // parsed form of page
	anch  extract.Anchor
	truth money.Amount
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func benchFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		w := sheriff.NewWorld(sheriff.WorldOptions{Seed: 1, LongTail: 12})
		if _, err := w.RunCrowd(sheriff.CrowdOptions{Users: 40, Requests: 120, Span: 12 * 24 * time.Hour}); err != nil {
			panic(err)
		}
		if err := w.EnsureAnchors(w.Crawled); err != nil {
			panic(err)
		}
		if _, err := w.RunCrawl(sheriff.CrawlOptions{MaxProducts: 8, Rounds: 3}); err != nil {
			panic(err)
		}
		if _, err := w.RunLoginExperiment("www.amazon.com", 10, []string{"userA", "userB", "userC"}); err != nil {
			panic(err)
		}

		// A representative page + anchor for the extraction benches.
		r := w.Retailers["www.digitalrev.com"]
		p := r.Catalog().Products()[0]
		loc, err := geo.LocationOf("US", "Boston")
		if err != nil {
			panic(err)
		}
		visit := shop.Visit{Loc: loc, Time: w.Clock.Now(), IP: "10.0.1.200"}
		page := r.RenderProduct(p, visit)
		doc, err := htmlx.ParseString(page)
		if err != nil {
			panic(err)
		}
		truth := r.DisplayPrice(p, visit)
		anch, err := extract.Derive(doc, money.Format(truth, truth.Currency.Style()), money.USD)
		if err != nil {
			panic(err)
		}
		fix = &fixture{world: w, page: page, doc: doc, anch: anch, truth: truth}
	})
	return fix
}

// --- Figure/table benchmarks (one per paper exhibit) ---

// BenchmarkFig1CrowdRequestCounts regenerates Fig. 1: domains ranked by
// crowd requests with price differences.
func BenchmarkFig1CrowdRequestCounts(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.world.Fig1(); len(rows) == 0 {
			b.Fatal("empty Fig1")
		}
	}
}

// BenchmarkFig2CrowdRatioBoxplots regenerates Fig. 2.
func BenchmarkFig2CrowdRatioBoxplots(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.world.Fig2(); len(rows) == 0 {
			b.Fatal("empty Fig2")
		}
	}
}

// BenchmarkFig3CrawlExtent regenerates Fig. 3 (includes the persistence
// and A/B-rejection machinery).
func BenchmarkFig3CrawlExtent(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.world.Fig3(); len(rows) != 21 {
			b.Fatalf("Fig3 rows = %d", len(rows))
		}
	}
}

// BenchmarkFig4CrawlRatioBoxplots regenerates Fig. 4.
func BenchmarkFig4CrawlRatioBoxplots(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.world.Fig4(); len(rows) == 0 {
			b.Fatal("empty Fig4")
		}
	}
}

// BenchmarkFig5RatioVsPrice regenerates the Fig. 5 scatter and its
// price-band envelope.
func BenchmarkFig5RatioVsPrice(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := f.world.Fig5()
		if len(points) == 0 {
			b.Fatal("empty Fig5")
		}
		sheriff.EnvelopeOf(points)
	}
}

// BenchmarkFig6StrategyProfiles regenerates both Fig. 6 panels (per-VP
// series plus multiplicative/additive model fits).
func BenchmarkFig6StrategyProfiles(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := f.world.Fig6("www.digitalrev.com"); len(s) == 0 {
			b.Fatal("empty Fig6a")
		}
		if s := f.world.Fig6("www.energie.it"); len(s) == 0 {
			b.Fatal("empty Fig6b")
		}
	}
}

// BenchmarkFig7LocationBoxplots regenerates Fig. 7.
func BenchmarkFig7LocationBoxplots(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.world.Fig7(); len(rows) != 14 {
			b.Fatalf("Fig7 rows = %d", len(rows))
		}
	}
}

// BenchmarkFig8PairwiseGrids regenerates all three Fig. 8 grids.
func BenchmarkFig8PairwiseGrids(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := f.world.Fig8("www.homedepot.com", "city"); len(g.Locations) == 0 {
			b.Fatal("empty homedepot grid")
		}
		f.world.Fig8("www.amazon.com", "country")
		f.world.Fig8("store.killah.com", "country")
	}
}

// BenchmarkFig9FinlandPremium regenerates Fig. 9.
func BenchmarkFig9FinlandPremium(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.world.Fig9(); len(rows) == 0 {
			b.Fatal("empty Fig9")
		}
	}
}

// BenchmarkFig10LoginExperiment regenerates the Fig. 10 series from the
// login-experiment observations.
func BenchmarkFig10LoginExperiment(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := f.world.Fig10()
		if len(ls.SKUs) == 0 {
			b.Fatal("empty Fig10")
		}
	}
}

// BenchmarkDatasetSummary regenerates the Sec. 3.2/4.1 dataset summary.
func BenchmarkDatasetSummary(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sheriff.Summarize(f.world.Store, 340, 18, 600)
		if s.CrawledDomains != 21 {
			b.Fatalf("summary: %+v", s)
		}
	}
}

// BenchmarkThirdPartyPresence regenerates the Sec. 4.4 tracker table.
func BenchmarkThirdPartyPresence(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := f.world.ThirdPartyAudit()
		if err != nil || p["ga"] == 0 {
			b.Fatalf("audit: %v %v", p, err)
		}
	}
}

// BenchmarkPersonaExperiment runs the Sec. 4.4 persona comparison
// (train two personas, compare product prices) per iteration.
func BenchmarkPersonaExperiment(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := f.world.RunPersonaExperiment([]string{"www.digitalrev.com"}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Differing != 0 {
			b.Fatal("persona effect appeared")
		}
	}
}

// BenchmarkCurrencyFilter measures the Sec. 2.2 worst-case-rate filter on
// a 14-quote group (one per vantage point).
func BenchmarkCurrencyFilter(b *testing.B) {
	market := fx.NewMarket(1)
	day := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)
	currencies := []money.Currency{
		money.USD, money.EUR, money.GBP, money.BRL, money.USD, money.EUR,
		money.USD, money.EUR, money.USD, money.USD, money.GBP, money.EUR,
		money.USD, money.BRL,
	}
	quotes := make([]fx.Quote, len(currencies))
	for i, c := range currencies {
		quotes[i] = fx.Quote{Amount: money.FromMinor(int64(10000+i*137), c), Day: day}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		market.RealVariation(quotes)
	}
}

// --- Pipeline micro-benchmarks ---

// BenchmarkCrowdCheck measures one complete $heriff check: user-side
// fetch, anchor derivation, synchronized 14-VP fan-out, extraction,
// currency filter, storage.
func BenchmarkCrowdCheck(b *testing.B) {
	f := benchFixture(b)
	r := f.world.Retailers["www.digitalrev.com"]
	ps := r.Catalog().Products()
	loc, _ := geo.LocationOf("US", "Boston")
	addr, _ := geo.AddrFor(loc, 201)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%len(ps)]
		amt := r.DisplayPrice(p, shop.Visit{Loc: loc, Time: f.world.Clock.Now(), IP: addr.String()})
		_, err := f.world.Backend.Check(sheriff.CheckRequest{
			URL:       "http://www.digitalrev.com/product/" + p.SKU,
			Highlight: money.Format(amt, amt.Currency.Style()),
			UserAddr:  addr,
			UserID:    "bench",
		})
		// The world injects deterministic transient 503s (8.5% of URLs per
		// day); a check bouncing off one is modeled reality, not a bench
		// failure.
		if err != nil && !strings.Contains(err.Error(), "status 503") {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageRender measures storefront page generation.
func BenchmarkPageRender(b *testing.B) {
	f := benchFixture(b)
	r := f.world.Retailers["www.digitalrev.com"]
	p := r.Catalog().Products()[0]
	loc, _ := geo.LocationOf("DE", "Berlin")
	v := shop.Visit{Loc: loc, Time: f.world.Clock.Now(), IP: "10.2.0.9"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if page := r.RenderProduct(p, v); len(page) == 0 {
			b.Fatal("empty page")
		}
	}
}

// BenchmarkPageParse measures HTML parsing of a product page.
func BenchmarkPageParse(b *testing.B) {
	f := benchFixture(b)
	b.SetBytes(int64(len(f.page)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := htmlx.ParseString(f.page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnchorDerive measures highlight-to-anchor derivation.
func BenchmarkAnchorDerive(b *testing.B) {
	f := benchFixture(b)
	highlight := money.Format(f.truth, f.truth.Currency.Style())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extract.Derive(f.doc, highlight, money.USD); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExtractionAnchor measures anchor-based extraction — the
// paper's approach (DESIGN.md ablation 1, fast path).
func BenchmarkAblationExtractionAnchor(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		amt, err := f.anch.Extract(f.doc, money.USD)
		if err != nil || amt.Units != f.truth.Units {
			b.Fatalf("extract: %v %v", amt, err)
		}
	}
}

// BenchmarkAblationExtractionNaive measures the first-price-on-page
// strawman (DESIGN.md ablation 1, baseline).
func BenchmarkAblationExtractionNaive(b *testing.B) {
	f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extract.NaiveFirst(f.doc, money.USD); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPriceParse measures localized price parsing.
func BenchmarkPriceParse(b *testing.B) {
	inputs := []string{"$1,234.56", "1.234,56 €", "R$ 59,90", "£9.99", "1 234,56 zł"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := money.Parse(inputs[i%len(inputs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeoLookup measures GeoIP resolution.
func BenchmarkGeoLookup(b *testing.B) {
	db := geo.NewDB()
	vps := geo.VantagePoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Lookup(vps[i%len(vps)].Addr); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// --- Observation store benchmarks (sharded engine vs seed linear scan) ---

// benchLinear is the seed's single-mutex, single-slice store engine,
// reproduced here as the baseline the sharded engine is measured against.
type benchLinear struct {
	mu  sync.RWMutex
	obs []store.Observation
}

func (s *benchLinear) add(o store.Observation) {
	s.mu.Lock()
	s.obs = append(s.obs, o)
	s.mu.Unlock()
}

func (s *benchLinear) filter(q store.Query) []store.Observation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []store.Observation
	for _, o := range s.obs {
		if q.Domain != "" && o.Domain != q.Domain {
			continue
		}
		if q.SKU != "" && o.SKU != q.SKU {
			continue
		}
		if q.Source != "" && o.Source != q.Source {
			continue
		}
		if q.VP != "" && o.VP != q.VP {
			continue
		}
		if q.Round >= 0 && o.Round != q.Round {
			continue
		}
		if q.OnlyOK && !o.OK {
			continue
		}
		out = append(out, o)
	}
	return out
}

func (s *benchLinear) groupByProduct(source string) map[store.Key][]store.Observation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[store.Key][]store.Observation{}
	for _, o := range s.obs {
		if source != "" && o.Source != source {
			continue
		}
		k := store.Key{Domain: o.Domain, SKU: o.SKU}
		out[k] = append(out[k], o)
	}
	return out
}

// benchObservations synthesizes a campaign-shaped dataset: crawl rows
// over domains × SKUs × vantage points × rounds, with a crowd slice
// (~1% of rows, as in the paper's 1.5K checks vs 188K crawl prices) that
// partially overlaps the crawled product space.
func benchObservations(n int) []store.Observation {
	day := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)
	out := make([]store.Observation, n)
	for i := range out {
		domain := fmt.Sprintf("shop%02d.example.com", i%40)
		src := store.SourceCrawl
		round := i % 7
		sku := fmt.Sprintf("P-%d", (i/40)%80)
		if i%97 == 0 {
			src, round = store.SourceCrowd, -1
			if i%5 != 0 {
				sku = fmt.Sprintf("C-%d", (i/40)%200)
			}
		}
		out[i] = store.Observation{
			Domain: domain, SKU: sku,
			VP: fmt.Sprintf("vp-%d", i%14), PriceUnits: int64(1000 + i%5000),
			Currency: "USD", Time: day.AddDate(0, 0, round),
			Round: round, Source: src, OK: i%11 != 0,
		}
	}
	return out
}

var storeBenchSizes = []struct {
	name string
	n    int
}{
	{"10K", 10_000},
	{"100K", 100_000},
	{"1M", 1_000_000},
}

// BenchmarkStoreAdd measures serial single-observation ingest, index
// maintenance included.
func BenchmarkStoreAdd(b *testing.B) {
	for _, size := range storeBenchSizes {
		obs := benchObservations(size.n)
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := store.New()
				for _, o := range obs {
					st.Add(o)
				}
			}
		})
	}
}

// BenchmarkStoreAddAll measures batch ingest in fan-out-sized batches
// (14 observations, one product check), the backend/crawler write shape.
func BenchmarkStoreAddAll(b *testing.B) {
	for _, size := range storeBenchSizes {
		obs := benchObservations(size.n)
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := store.New()
				for j := 0; j < len(obs); j += 14 {
					end := j + 14
					if end > len(obs) {
						end = len(obs)
					}
					st.AddAll(obs[j:end])
				}
			}
		})
	}
}

// BenchmarkStoreFilterDomain measures a domain-scoped query on the
// sharded, indexed engine (O(result) posting-list walk).
func BenchmarkStoreFilterDomain(b *testing.B) {
	for _, size := range storeBenchSizes {
		obs := benchObservations(size.n)
		st := store.New()
		st.AddAll(obs)
		q := store.Query{Domain: "shop02.example.com", Round: 3, OnlyOK: true}
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if rows := st.Filter(q); len(rows) == 0 {
					b.Fatal("empty filter")
				}
			}
		})
	}
}

// BenchmarkStoreFilterDomainLinear is the same query against the seed's
// linear scan — the baseline the ≥5× win is measured against.
func BenchmarkStoreFilterDomainLinear(b *testing.B) {
	for _, size := range storeBenchSizes {
		st := &benchLinear{}
		for _, o := range benchObservations(size.n) {
			st.add(o)
		}
		q := store.Query{Domain: "shop02.example.com", Round: 3, OnlyOK: true}
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if rows := st.filter(q); len(rows) == 0 {
					b.Fatal("empty filter")
				}
			}
		})
	}
}

// BenchmarkStoreGroupByProduct measures the analysis layer's partition
// query on the indexed engine (posting lists, no full-dataset scan).
func BenchmarkStoreGroupByProduct(b *testing.B) {
	for _, size := range storeBenchSizes {
		st := store.New()
		st.AddAll(benchObservations(size.n))
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if g := st.GroupByProduct(store.SourceCrawl); len(g) == 0 {
					b.Fatal("empty grouping")
				}
			}
		})
	}
}

// BenchmarkStoreGroupByProductLinear is the seed's full-scan grouping.
func BenchmarkStoreGroupByProductLinear(b *testing.B) {
	for _, size := range storeBenchSizes {
		st := &benchLinear{}
		for _, o := range benchObservations(size.n) {
			st.add(o)
		}
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if g := st.groupByProduct(store.SourceCrawl); len(g) == 0 {
					b.Fatal("empty grouping")
				}
			}
		})
	}
}

// BenchmarkStoreGroupsStream measures the zero-materialization streaming
// path the figures actually run on.
func BenchmarkStoreGroupsStream(b *testing.B) {
	for _, size := range storeBenchSizes {
		st := store.New()
		st.AddAll(benchObservations(size.n))
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				groups := 0
				for _, g := range st.Groups(store.SourceCrawl) {
					groups += len(g)
				}
				if groups == 0 {
					b.Fatal("empty stream")
				}
			}
		})
	}
}

// BenchmarkStoreConcurrentMixed measures the fan-out contention case the
// sharding exists for: parallel writers on distinct domains racing
// domain-scoped readers.
func BenchmarkStoreConcurrentMixed(b *testing.B) {
	obs := benchObservations(100_000)
	st := store.New()
	st.AddAll(obs)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%4 == 0 {
				st.AddAll(obs[i%1000*14 : i%1000*14+14])
			} else {
				st.Filter(store.Query{Domain: obs[i%len(obs)].Domain, Round: 3, OnlyOK: true})
			}
			i++
		}
	})
}

// BenchmarkStoreAppendAndQuery measures observation ingest plus a domain
// query on a growing store.
func BenchmarkStoreAppendAndQuery(b *testing.B) {
	st := store.New()
	day := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Add(store.Observation{
			Domain: "bench.example.com", SKU: "B-1", VP: "us-bos",
			PriceUnits: int64(i), Currency: "USD", Time: day,
			Round: i % 7, Source: store.SourceCrawl, OK: true,
		})
		if i%1024 == 0 {
			st.Filter(store.Query{Domain: "bench.example.com", Round: i % 7, OnlyOK: true})
		}
	}
}

// BenchmarkDurableAddAll measures the durable write path in the backend's
// fan-out shape (14-observation single-domain batches): WAL framing, the
// shard log append, and — under fsync=always — the per-batch fsync that
// bounds crash loss to zero. Sub-benchmark names are stable strings with
// no numeric tail, so the CI allocs/op gate pairs them across machines
// (see cmd/benchjson: a GOMAXPROCS suffix is stripped only when uniform).
func BenchmarkDurableAddAll(b *testing.B) {
	batch := benchObservations(100_000)[:14]
	for i := range batch {
		batch[i].Domain = "durable.example.com"
	}
	for _, policy := range []store.FsyncPolicy{store.FsyncNever, store.FsyncAlways} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			d, _, err := store.OpenDurable(b.TempDir(), store.DurableOptions{
				Fsync: policy, CompactWALBytes: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.AddAll(batch)
			}
			b.StopTimer()
			if d.Len() != 14*b.N {
				b.Fatalf("Len = %d, want %d", d.Len(), 14*b.N)
			}
		})
	}
}

// BenchmarkRecovery measures opening a 50K-observation data directory in
// its extreme states: the whole dataset in the WAL tail (a kill -9
// right after heavy writes), the dataset compacted into time-bucketed
// snapshot segments — benchObservations spans 7 simulated days, so the
// default 24h bucket yields 7 buckets with the 6 cold ones gzipped, and
// recovery pays the decompression — and the same dataset compacted flat
// into one uncompressed bucket for contrast. Sub-benchmark names are
// stable; the size lives here in the comment, not in the name.
func BenchmarkRecovery(b *testing.B) {
	const rows = 50_000
	prep := func(b *testing.B, opts store.DurableOptions, compact bool) string {
		b.Helper()
		dir := b.TempDir()
		opts.Fsync = store.FsyncNever
		opts.CompactWALBytes = -1
		d, _, err := store.OpenDurable(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		obs := benchObservations(rows)
		for j := 0; j < len(obs); j += 14 {
			end := j + 14
			if end > len(obs) {
				end = len(obs)
			}
			d.AddAll(obs[j:end])
		}
		if compact {
			if err := d.Compact(); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	for _, mode := range []struct {
		name    string
		opts    store.DurableOptions
		compact bool
	}{
		{"wal-replay", store.DurableOptions{}, false},
		{"snapshot-load", store.DurableOptions{}, true},
		// A width whose epoch-aligned boundaries bracket the whole
		// dataset, so the flat contrast really is one bucket.
		{"snapshot-load-flat", store.DurableOptions{BucketDuration: 1000 * 24 * time.Hour}, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := prep(b, mode.opts, mode.compact)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, rep, err := store.OpenReadOnly(dir)
				if err != nil {
					b.Fatal(err)
				}
				if st.Len() != rows || rep.Rows() != rows {
					b.Fatalf("recovered %d rows, want %d", st.Len(), rows)
				}
			}
		})
	}
}

// BenchmarkStoreScanTimeWindow measures a time-bounded ScanRange — the
// v1 observations path with since/until — where the only filter is the
// time window, so the store answers from bucket selection (one of the
// dataset's 7 daily buckets scanned, 6 skipped) instead of walking the
// full sequence range.
func BenchmarkStoreScanTimeWindow(b *testing.B) {
	day := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)
	for _, size := range storeBenchSizes {
		st := store.New()
		st.AddAll(benchObservations(size.n))
		q := store.Query{Round: -1, Since: day.AddDate(0, 0, 2), Until: day.AddDate(0, 0, 3)}
		b.Run(size.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows := 0
				for _, o := range st.ScanRange(q, 0, st.Watermark()) {
					_ = o
					rows++
				}
				if rows == 0 {
					b.Fatal("empty window")
				}
			}
		})
	}
}

// BenchmarkStrategyFit measures the Fig. 6 model-fitting kernel.
func BenchmarkStrategyFit(b *testing.B) {
	pts := make([]analysis.RatioPoint, 100)
	for i := range pts {
		p := 10.0 * float64(i+1)
		pts[i] = analysis.RatioPoint{MinUSD: p, Ratio: 1.05 + 8/p}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fit := analysis.FitStrategy(pts); fit.Kind != analysis.StrategyAdditive {
			b.Fatalf("fit = %+v", fit)
		}
	}
}

// --- Campaign-engine benchmarks (parallel matrix + concurrent checks) ---

// benchMatrix runs a reduced scenario-matrix sweep at the given worker
// count: the parallel campaign engine's end-to-end cost (world build,
// anchor learning, synchronized crawl, detection) per scenario world.
func benchMatrix(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := sheriff.RunScenarioMatrix(sheriff.MatrixOptions{
			Seed: 1, Products: 4, Rounds: 2, Workers: workers,
			Scenarios: []string{"control", "geo-mult", "fingerprint", "weekday"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Outcomes) != 4 {
			b.Fatalf("outcomes = %d", len(rep.Outcomes))
		}
	}
}

// BenchmarkScenarioMatrixSequential is the workers=1 baseline.
func BenchmarkScenarioMatrixSequential(b *testing.B) { benchMatrix(b, 1) }

// BenchmarkScenarioMatrixParallel runs the same sweep with 4 workers;
// on multicore hardware the isolated worlds overlap and wall time drops
// toward 1/4 of the sequential run.
func BenchmarkScenarioMatrixParallel(b *testing.B) { benchMatrix(b, 4) }

// BenchmarkCrowdCheckConcurrent hammers Backend.Check from GOMAXPROCS
// goroutines at one simulated instant — the crowd-load shape. The
// single-flight page cache collapses repeated (product × vantage point)
// fetches across the concurrent users.
func BenchmarkCrowdCheckConcurrent(b *testing.B) {
	f := benchFixture(b)
	r := f.world.Retailers["www.digitalrev.com"]
	ps := r.Catalog().Products()
	loc, _ := geo.LocationOf("US", "Boston")
	b.ResetTimer()
	var next int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(atomic.AddInt64(&next, 1))
			addr, _ := geo.AddrFor(loc, 100+i%100)
			p := ps[i%len(ps)]
			amt := r.DisplayPrice(p, shop.Visit{Loc: loc, Time: f.world.Clock.Now(), IP: addr.String()})
			_, err := f.world.Backend.Check(sheriff.CheckRequest{
				URL:       "http://www.digitalrev.com/product/" + p.SKU,
				Highlight: money.Format(amt, amt.Currency.Style()),
				UserAddr:  addr,
				UserID:    "bench-concurrent",
			})
			if err != nil && !strings.Contains(err.Error(), "status 503") {
				b.Fatal(err)
			}
		}
	})
}

// --- v1 HTTP API benchmarks (PR 5) ---

// apiBenchServer builds a dedicated world behind the full v1 stack
// (middleware included) over real TCP. Dedicated — API checks mutate
// the store, and the shared fixture's dataset must stay fixed for the
// figure benchmarks.
func apiBenchServer(b *testing.B, preload int) (*sheriff.World, *httptest.Server) {
	b.Helper()
	w := sheriff.NewWorld(sheriff.WorldOptions{Seed: 1, LongTail: 6})
	if preload > 0 {
		w.Store.AddAll(benchObservations(preload))
	}
	srv := httptest.NewServer(sheriff.NewAPIWithOptions(w, sheriff.APIOptions{
		Logger: log.New(io.Discard, "", 0),
	}))
	b.Cleanup(srv.Close)
	return w, srv
}

// BenchmarkAPICheckHTTP measures one crowd check end to end over the
// wire: middleware stack, JSON decode, the backend's synchronized 14-VP
// fan-out (page-cache-deduped across iterations), JSON encode.
func BenchmarkAPICheckHTTP(b *testing.B) {
	w, srv := apiBenchServer(b, 0)
	r := w.Retailers["www.digitalrev.com"]
	p := r.Catalog().Products()[0]
	loc, _ := geo.LocationOf("US", "Boston")
	addr, _ := geo.AddrFor(loc, 61)
	amt := r.DisplayPrice(p, shop.Visit{Loc: loc, Time: w.Clock.Now(), IP: addr.String()})
	payload := fmt.Sprintf(
		`{"url":"http://www.digitalrev.com/product/%s","highlight":"%s","user_addr":"%s","user_id":"bench"}`,
		p.SKU, money.Format(amt, amt.Currency.Style()), addr)
	client := srv.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(srv.URL+"/api/v1/checks", "application/json", strings.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkObservationsStream measures the NDJSON export of a
// 100K-observation dataset: store iterators straight onto the socket,
// decoder-side bytes discarded.
func BenchmarkObservationsStream(b *testing.B) {
	_, srv := apiBenchServer(b, 100_000)
	client := srv.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/observations", nil)
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Accept", "application/x-ndjson")
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("empty stream")
		}
	}
}

// --- Incremental analysis engine benchmarks (PR 6) ---

// denseObservations builds n rows concentrated on a handful of heavy
// domains (200 SKUs x 14 VPs x rotating rounds) — the shape where a
// full per-domain recompute is expensive and the aggregate fold's
// O(delta) advantage is unambiguous.
func denseObservations(n, domains int) []store.Observation {
	day := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)
	out := make([]store.Observation, n)
	for i := range out {
		round := (i / (domains * 200 * 14)) % 7
		out[i] = store.Observation{
			Domain: fmt.Sprintf("dense%02d.example.com", i%domains),
			SKU:    fmt.Sprintf("P-%d", (i/domains)%200),
			VP:     fmt.Sprintf("vp-%d", (i/(domains*200))%14),
			// Price varies by VP so groups carry real variation work.
			PriceUnits: int64(1000 + (i/(domains*200))%14*150 + i%7),
			Currency:   "USD", Time: day.AddDate(0, 0, round),
			Round: round, Source: store.SourceCrawl, OK: i%13 != 0,
		}
	}
	return out
}

// incrementalBenchWorld preloads a store+engine pair with rows rows.
func incrementalBenchWorld(b *testing.B, rows int) (*store.Store, *sheriff.AnalysisEngine, *fx.Market) {
	b.Helper()
	market := fx.NewMarket(1)
	st := store.New()
	eng := sheriff.NewAnalysisEngine(st, market, sheriff.AnalysisOptions{})
	st.AddAll(denseObservations(rows, 5))
	return st, eng, market
}

// reportDelta is the per-iteration write the report benchmarks pay: a
// small batch landing on the reported domain, so neither path can serve
// a stale answer.
func reportDelta(i int) []store.Observation {
	day := time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)
	return []store.Observation{{
		Domain: "dense00.example.com", SKU: fmt.Sprintf("P-%d", i%200),
		VP: "vp-0", PriceUnits: int64(1500 + i%97), Currency: "USD",
		Time: day, Round: i % 7, Source: store.SourceCrawl, OK: true,
	}}
}

// BenchmarkDomainReportIncremental measures report freshness on the
// write path served off the aggregates: per iteration one delta batch
// lands on the domain (folded by the engine's store observer — that cost
// is inside the loop, deliberately) and the report is assembled from
// fold state. Work is O(delta + products of the domain), independent of
// how many rows the domain has accumulated.
func BenchmarkDomainReportIncremental(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
	}{{"100K", 100_000}, {"300K", 300_000}} {
		b.Run(size.name, func(b *testing.B) {
			st, eng, _ := incrementalBenchWorld(b, size.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.AddAll(reportDelta(i))
				rep := api.ReportFromEngine(eng, "dense00.example.com")
				if rep.Observations == 0 {
					b.Fatal("empty report")
				}
			}
		})
	}
}

// BenchmarkDomainReportFull is the pre-engine reference path under the
// identical write pattern: every report recomputes counters, ratios and
// the strategy verdict from the domain's raw rows — O(rows of the
// domain) per call, growing with the dataset.
func BenchmarkDomainReportFull(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
	}{{"100K", 100_000}, {"300K", 300_000}} {
		b.Run(size.name, func(b *testing.B) {
			st, _, market := incrementalBenchWorld(b, size.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.AddAll(reportDelta(i))
				rep := api.FullDomainReport(st, market, "dense00.example.com")
				if rep.Observations == 0 {
					b.Fatal("empty report")
				}
			}
		})
	}
}

// BenchmarkDetectIncrementalVsFull holds the two strategy-verdict paths
// against each other on the same 100K-row store: the engine answers from
// its per-family tallies, the full path re-judges every product group.
func BenchmarkDetectIncrementalVsFull(b *testing.B) {
	st, eng, market := incrementalBenchWorld(b, 100_000)
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep := eng.StrategyReport("dense00.example.com")
			if len(rep.Evidence) == 0 {
				b.Fatal("empty verdict")
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep := analysis.DetectStrategies(st, market, "dense00.example.com", analysis.DetectOptions{})
			if len(rep.Evidence) == 0 {
				b.Fatal("empty verdict")
			}
		}
	})
}
