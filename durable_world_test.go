// End-to-end durability through the public facade: a World recording
// into a durable backend must run the paper's campaigns unchanged, and
// the resulting data directory must reopen — after a clean close AND
// after a simulated crash — with the exact dataset live readers saw.
package sheriff_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"sheriff"
)

// durableWorld builds a small world on a durable store in a temp dir.
func durableWorld(t *testing.T, seed int64) (*sheriff.World, *sheriff.DurableStore, string) {
	t.Helper()
	dir := t.TempDir()
	d, rep, err := sheriff.OpenDataDir(dir, sheriff.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows() != 0 {
		t.Fatalf("fresh dir recovered %d rows", rep.Rows())
	}
	w := sheriff.NewWorld(sheriff.WorldOptions{Seed: seed, LongTail: 6, Store: d})
	return w, d, dir
}

func TestWorldOnDurableBackend(t *testing.T) {
	w, d, dir := durableWorld(t, 21)
	if _, err := w.RunCrowd(sheriff.CrowdOptions{Users: 12, Requests: 30, Span: 4 * 24 * time.Hour}); err != nil {
		t.Fatal(err)
	}
	domains := []string{"www.digitalrev.com", "www.energie.it"}
	if err := w.EnsureAnchors(domains); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunCrawl(sheriff.CrawlOptions{Domains: domains, MaxProducts: 4, Rounds: 2}); err != nil {
		t.Fatal(err)
	}
	if w.Store.Len() == 0 {
		t.Fatal("campaigns recorded nothing")
	}
	var live bytes.Buffer
	if err := w.Store.WriteJSONL(&live); err != nil {
		t.Fatal(err)
	}

	// Crash first (no Close): the WAL alone must reproduce the dataset.
	crashed, rep, err := sheriff.OpenDataDirReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows() != w.Store.Len() || crashed.Len() != w.Store.Len() {
		t.Fatalf("crash recovery: %d rows (report %d), want %d", crashed.Len(), rep.Rows(), w.Store.Len())
	}
	var recovered bytes.Buffer
	if err := crashed.WriteJSONL(&recovered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), recovered.Bytes()) {
		t.Fatal("recovered dataset diverged from the live store")
	}

	// Then close cleanly and reopen writable: same dataset, and the
	// figures pipeline runs on the recovered backend via the Reader
	// surface exactly as it does on a memory store.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, rep2, err := sheriff.OpenDataDir(dir, sheriff.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rep2.Rows() != crashed.Len() {
		t.Fatalf("clean reopen recovered %d rows, want %d", rep2.Rows(), crashed.Len())
	}
	w2 := sheriff.NewWorld(sheriff.WorldOptions{Seed: 21, LongTail: 6, Store: d2})
	if len(w2.Fig3()) == 0 {
		t.Fatal("figures empty on recovered backend")
	}
}

func TestAPIStatsReportsDurability(t *testing.T) {
	w, d, _ := durableWorld(t, 33)
	srv := httptest.NewServer(sheriff.NewAPI(w))
	defer srv.Close()
	defer d.Close()

	if _, err := w.RunCrowd(sheriff.CrowdOptions{Users: 5, Requests: 8, Span: 24 * time.Hour}); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Observations int `json:"observations"`
		Durable      *struct {
			Fsync     string `json:"fsync"`
			SyncedSeq uint64 `json:"synced_seq"`
		} `json:"durable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Durable == nil {
		t.Fatal("stats missing the durable block on a durable backend")
	}
	if stats.Durable.Fsync != "always" {
		t.Fatalf("fsync = %q", stats.Durable.Fsync)
	}
	// Always-mode: everything stored is already durable at quiesce.
	if got := stats.Durable.SyncedSeq; got != uint64(stats.Observations) {
		t.Fatalf("synced_seq = %d, observations = %d", got, stats.Observations)
	}

	// A memory-backed world must NOT report a durable block.
	wm := sheriff.NewWorld(sheriff.WorldOptions{Seed: 33, LongTail: 6})
	srvm := httptest.NewServer(sheriff.NewAPI(wm))
	defer srvm.Close()
	respm, err := srvm.Client().Get(srvm.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer respm.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(respm.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["durable"]; ok {
		t.Fatal("memory backend reported a durable block")
	}
}
