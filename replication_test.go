// Differential proof of WAL-shipping replication: across every
// scenario-matrix world, a follower that caught up over the real HTTP
// replication stream must answer the v1 read surface BYTE-IDENTICAL to
// its primary — observations (paginated JSON and the NDJSON stream), the
// per-domain report, and the full analysis event history. Equivalence is
// the contract: a follower is the primary's reads, just elsewhere.
package sheriff_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sheriff"
)

// clusterPair is one primary world + its caught-up follower, both served
// over real HTTP.
type clusterPair struct {
	primary, follower *httptest.Server
	w, fw             *sheriff.World
	fol               *sheriff.Follower
}

// newClusterPair crawls one scenario world on the primary, then brings a
// follower (same seed, same configs, empty store) up to date over the
// replication stream.
func newClusterPair(t *testing.T, cfg sheriff.ShopConfig) *clusterPair {
	t.Helper()
	discard := log.New(io.Discard, "", 0)
	w := sheriff.NewWorld(sheriff.WorldOptions{
		Seed:             5,
		Configs:          []sheriff.ShopConfig{cfg},
		FetchFailureRate: -1,
	})
	if err := w.EnsureAnchors(w.Crawled); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunCrawl(sheriff.CrawlOptions{MaxProducts: 8, Rounds: 7}); err != nil {
		t.Fatal(err)
	}
	primary := httptest.NewServer(sheriff.NewAPIWithOptions(w, sheriff.APIOptions{Logger: discard}))
	t.Cleanup(primary.Close)

	// The follower world must exist before the catch-up so its analysis
	// engine observes every applied batch — that fold, batch for batch,
	// is what makes the event history identical.
	fst := sheriff.NewStore()
	fw := sheriff.NewWorld(sheriff.WorldOptions{
		Seed:             5,
		Configs:          []sheriff.ShopConfig{cfg},
		FetchFailureRate: -1,
		Store:            fst,
	})
	fol := sheriff.NewFollower(primary.URL, fst, sheriff.FollowerOptions{})
	if err := fol.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	follower := httptest.NewServer(sheriff.NewAPIWithOptions(fw, sheriff.APIOptions{
		Logger:     discard,
		ReadOnly:   true,
		PrimaryURL: primary.URL,
		Follower:   fol,
	}))
	t.Cleanup(follower.Close)
	return &clusterPair{primary: primary, follower: follower, w: w, fw: fw, fol: fol}
}

// get fetches one URL and returns the body.
func get(t *testing.T, url, accept string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d (%s)", url, resp.StatusCode, body)
	}
	return body
}

// assertSameBody fetches the same path from both nodes and demands
// byte-identical answers.
func assertSameBody(t *testing.T, p *clusterPair, path, accept, label string) {
	t.Helper()
	pb := get(t, p.primary.URL+path, accept)
	fb := get(t, p.follower.URL+path, accept)
	if !bytes.Equal(pb, fb) {
		t.Errorf("%s: follower diverged on %s\n primary  %.300s\n follower %.300s", label, path, pb, fb)
	}
}

func TestReplicationByteIdenticalScenarioMatrix(t *testing.T) {
	cfgs := sheriff.ScenarioConfigs(5)
	if len(cfgs) == 0 {
		t.Fatal("no scenario configs")
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Label, func(t *testing.T) {
			t.Parallel()
			p := newClusterPair(t, cfg)

			if pw, fw := p.w.Store.Watermark(), p.fw.Store.Watermark(); pw != fw || pw == 0 {
				t.Fatalf("watermarks: primary %d, follower %d", pw, fw)
			}

			// The full dataset, both read paths: page through the
			// paginated JSON (cursors included — they encode the same
			// sequence positions) and stream the NDJSON export.
			path := "/api/v1/observations?limit=100"
			for page := 0; ; page++ {
				pb := get(t, p.primary.URL+path, "")
				fb := get(t, p.follower.URL+path, "")
				if !bytes.Equal(pb, fb) {
					t.Fatalf("page %d diverged\n primary  %.300s\n follower %.300s", page, pb, fb)
				}
				var out struct {
					NextCursor string `json:"next_cursor"`
				}
				if err := json.Unmarshal(pb, &out); err != nil {
					t.Fatal(err)
				}
				if out.NextCursor == "" {
					break
				}
				path = "/api/v1/observations?limit=100&cursor=" + out.NextCursor
			}
			assertSameBody(t, p, "/api/v1/observations", "application/x-ndjson", "ndjson")

			// The analysis surface: per-domain report and the complete
			// event history, sequence numbers and simulated times included.
			assertSameBody(t, p, "/api/v1/domains/"+cfg.Domain+"/report", "", "report")
			assertSameBody(t, p, "/api/v1/events", "", "events")

			// And the follower knows what it is.
			var stats sheriff.APIStats
			if err := json.Unmarshal(get(t, p.follower.URL+"/api/v1/stats", ""), &stats); err != nil {
				t.Fatal(err)
			}
			r := stats.Replication
			if r == nil || r.Role != "follower" || r.LastApplied != p.w.Store.Watermark() || r.Lag != 0 {
				t.Fatalf("follower stats replication = %+v", r)
			}
		})
	}
}

// TestReplicationLiveTail drives the serving mode end to end: a follower
// running against a live primary applies new writes as they land, without
// reconnecting between batches.
func TestReplicationLiveTail(t *testing.T) {
	discard := log.New(io.Discard, "", 0)
	w := sheriff.NewWorld(sheriff.WorldOptions{Seed: 1, LongTail: 6})
	primary := httptest.NewServer(sheriff.NewAPIWithOptions(w, sheriff.APIOptions{Logger: discard}))
	defer primary.Close()

	fst := sheriff.NewStore()
	fol := sheriff.NewFollower(primary.URL, fst, sheriff.FollowerOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fol.Run(ctx) }()

	var batch []sheriff.Observation
	for i := 0; i < 3; i++ {
		batch = batch[:0]
		for j := 0; j < 5; j++ {
			batch = append(batch, sheriff.Observation{
				Domain: "tail.example.com", SKU: "SKU", Round: -1, Currency: "USD",
			})
		}
		w.Store.AddAll(batch)
		want := w.Store.Watermark()
		waitFor(t, func() bool { return fst.Watermark() == want })
	}
	if fst.Len() != w.Store.Len() {
		t.Fatalf("follower tailed %d rows, want %d", fst.Len(), w.Store.Len())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
}

// waitFor polls cond until true or the test deadline budget (5s) runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}
